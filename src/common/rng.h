#pragma once

// Deterministic random number generation.
//
// Everything stochastic in this repository (synthetic sequences, model
// weights, annealing moves, rank heterogeneity) flows through these
// generators so that tests and benchmark tables are bit-for-bit
// reproducible across runs and machines. We intentionally do not use
// std::mt19937 + std::uniform_*_distribution because their outputs are not
// specified identically across standard library implementations.

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace ids {

/// SplitMix64 — tiny, fast, and good enough for seeding and hashing-style
/// randomness. Also used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the workhorse generator. Fast, high quality, and with a
/// fully specified output sequence for a given seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1d5c0ff331ull) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method: unbiased and fast.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal() {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// True with probability p.
  bool bernoulli(double p) { return next_double() < p; }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  std::size_t pick_weighted(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    double r = next_double() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each rank /
  /// entity / stream its own reproducible randomness.
  Rng fork(std::uint64_t stream_id) {
    SplitMix64 sm(next_u64() ^ (stream_id * 0x9e3779b97f4a7c15ull));
    Rng child(sm.next());
    return child;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ids
