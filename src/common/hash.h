#pragma once

// Hashing helpers shared by the dictionary, the triple-store sharder, and
// the cache object-id computation. All hashes here are stable across runs
// and platforms (unlike std::hash), which matters because shard assignment
// and cache object ids are part of reproducible benchmark output.

#include <cstdint>
#include <cstring>
#include <string_view>

namespace ids {

/// 64-bit FNV-1a over a byte range. Stable and endian-independent for the
/// common case of string keys.
constexpr std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Strong 64-bit integer mix (the splitmix64 finalizer). Use before taking
/// a modulus so low-entropy ids still spread across shards.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Combines two 64-bit hashes (boost-style but 64-bit constants).
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ull + (seed << 12) + (seed >> 4));
}

}  // namespace ids
