#pragma once

// Minimal leveled logger. Output goes to stderr so it never pollutes the
// benchmark tables printed on stdout. Logging is process-global and
// thread-safe; the level can be raised to silence chatty subsystems in
// tests.
//
// Line format: `[ids WARN  2026-08-05T14:03:22.123Z t03] message` — an
// ISO-8601 UTC timestamp plus a small stable per-thread id, so interleaved
// multi-rank output can be ordered and attributed.
//
// IDS_LOG_EVERY_N(level, n) rate-limits a hot-path log site: the first
// call logs, then every n-th after that (per call site, process lifetime).

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace ids {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace internal {
void log_line(LogLevel level, const std::string& msg);

/// True when this call should log: call index 0, n, 2n, ... of `counter`.
/// n <= 1 always logs.
bool should_log_every_n(std::atomic<std::uint64_t>* counter, std::uint64_t n);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace ids

#define IDS_LOG(level)                                  \
  if (static_cast<int>(level) < static_cast<int>(::ids::log_level())) { \
  } else                                                \
    ::ids::internal::LogMessage(level)

/// Rate-limited IDS_LOG: logs the 1st, (n+1)th, (2n+1)th... execution of
/// this call site. The immediately-invoked lambda gives each expansion its
/// own function-local static counter; the single-iteration for-loop scopes
/// it while still letting the trailing `<< ...` stream bind to IDS_LOG.
#define IDS_LOG_EVERY_N(level, n)                                          \
  for (bool ids_log_every_n_once =                                         \
           ::ids::internal::should_log_every_n(                            \
               [] {                                                        \
                 static ::std::atomic<::std::uint64_t> ids_log_counter{0}; \
                 return &ids_log_counter;                                  \
               }(),                                                        \
               (n));                                                       \
       ids_log_every_n_once; ids_log_every_n_once = false)                 \
  IDS_LOG(level)

#define IDS_DEBUG IDS_LOG(::ids::LogLevel::kDebug)
#define IDS_INFO IDS_LOG(::ids::LogLevel::kInfo)
#define IDS_WARN IDS_LOG(::ids::LogLevel::kWarn)
#define IDS_ERROR IDS_LOG(::ids::LogLevel::kError)
