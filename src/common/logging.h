#pragma once

// Minimal leveled logger. Output goes to stderr so it never pollutes the
// benchmark tables printed on stdout. Logging is process-global and
// thread-safe; the level can be raised to silence chatty subsystems in
// tests.

#include <sstream>
#include <string>

namespace ids {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace internal {
void log_line(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace ids

#define IDS_LOG(level)                                  \
  if (static_cast<int>(level) < static_cast<int>(::ids::log_level())) { \
  } else                                                \
    ::ids::internal::LogMessage(level)

#define IDS_DEBUG IDS_LOG(::ids::LogLevel::kDebug)
#define IDS_INFO IDS_LOG(::ids::LogLevel::kInfo)
#define IDS_WARN IDS_LOG(::ids::LogLevel::kWarn)
#define IDS_ERROR IDS_LOG(::ids::LogLevel::kError)
