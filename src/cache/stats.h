#pragma once

// Cache instrumentation: where did reads get served, what moved where.

#include <cstdint>
#include <string>

namespace ids::cache {

struct CacheStats {
  // Read path, by serving tier.
  std::uint64_t hits_local_dram = 0;
  std::uint64_t hits_local_ssd = 0;
  std::uint64_t hits_remote_dram = 0;
  std::uint64_t hits_remote_ssd = 0;
  std::uint64_t hits_backing = 0;   // served by persistent backing store
  std::uint64_t misses = 0;         // not even in backing: caller recomputes

  // Write / movement path.
  std::uint64_t puts = 0;
  std::uint64_t spills_to_ssd = 0;  // DRAM eviction demoted a copy to SSD
  std::uint64_t ssd_drops = 0;      // SSD eviction dropped a cached copy
  std::uint64_t promotions = 0;     // remote hit copied object to local DRAM

  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  // Read-path payload bytes by serving tier (they sum to bytes_read).
  // Feeds per-query TierBytes accounting in telemetry/query_stats.h.
  std::uint64_t read_bytes_local_dram = 0;
  std::uint64_t read_bytes_local_ssd = 0;
  std::uint64_t read_bytes_remote_dram = 0;
  std::uint64_t read_bytes_remote_ssd = 0;
  std::uint64_t read_bytes_backing = 0;

  std::uint64_t total_hits() const {
    return hits_local_dram + hits_local_ssd + hits_remote_dram +
           hits_remote_ssd + hits_backing;
  }
  /// Hits served from cache tiers (excluding the backing store).
  std::uint64_t cache_tier_hits() const {
    return total_hits() - hits_backing;
  }

  /// Field-wise difference against an earlier snapshot of the same
  /// monotonic counters. CacheManager::stats() is implemented as
  /// `live_counters.since(baseline)` — the live counters come from the
  /// telemetry registry and never reset, so reset_stats() just moves the
  /// baseline.
  CacheStats since(const CacheStats& baseline) const {
    CacheStats d;
    d.hits_local_dram = hits_local_dram - baseline.hits_local_dram;
    d.hits_local_ssd = hits_local_ssd - baseline.hits_local_ssd;
    d.hits_remote_dram = hits_remote_dram - baseline.hits_remote_dram;
    d.hits_remote_ssd = hits_remote_ssd - baseline.hits_remote_ssd;
    d.hits_backing = hits_backing - baseline.hits_backing;
    d.misses = misses - baseline.misses;
    d.puts = puts - baseline.puts;
    d.spills_to_ssd = spills_to_ssd - baseline.spills_to_ssd;
    d.ssd_drops = ssd_drops - baseline.ssd_drops;
    d.promotions = promotions - baseline.promotions;
    d.bytes_read = bytes_read - baseline.bytes_read;
    d.bytes_written = bytes_written - baseline.bytes_written;
    d.read_bytes_local_dram =
        read_bytes_local_dram - baseline.read_bytes_local_dram;
    d.read_bytes_local_ssd =
        read_bytes_local_ssd - baseline.read_bytes_local_ssd;
    d.read_bytes_remote_dram =
        read_bytes_remote_dram - baseline.read_bytes_remote_dram;
    d.read_bytes_remote_ssd =
        read_bytes_remote_ssd - baseline.read_bytes_remote_ssd;
    d.read_bytes_backing = read_bytes_backing - baseline.read_bytes_backing;
    return d;
  }

  std::string to_string() const;
};

}  // namespace ids::cache
