#pragma once

// The globally shared, multi-tier, client-side cache (§3).
//
// Every cluster node (compute and dedicated memory nodes alike) contributes
// DRAM and optionally local SSD to a single cluster-wide cache. The DRAM
// tier is fabric-attached memory served through the OpenFAM layer
// (src/fam), so remote hits pay real RDMA-modelled costs and locality is a
// first-class, queryable property. When DRAM fills, least-recently-used
// objects spill to the owner node's SSD tier; when SSD fills, copies are
// dropped — authoritative data always remains in the persistent backing
// store (the DAOS/Lustre stand-in), so a node failure loses only cached
// copies, never data.
//
// Read path (cheapest first): local DRAM -> local SSD -> remote DRAM ->
// remote SSD -> backing store -> miss (caller recomputes and put()s).
// Metadata lives in a directory sharded by object id across nodes; a
// lookup whose directory shard is remote pays a small-message round trip.

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/object_id.h"
#include "cache/stats.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "fam/fam.h"
#include "sim/fabric.h"
#include "sim/virtual_clock.h"
#include "telemetry/metrics.h"

namespace ids::cache {

enum class TierKind { kDram, kSsd };

struct Location {
  int node = -1;
  TierKind tier = TierKind::kDram;
  friend bool operator==(const Location&, const Location&) = default;
};

struct CacheConfig {
  int num_nodes = 1;
  std::uint64_t dram_capacity_bytes = 8ull << 20;
  std::uint64_t ssd_capacity_bytes = 64ull << 20;
  sim::FabricParams fabric;
  /// Write puts through to the backing store (authoritative copy).
  bool write_through = true;
  /// Copy an object into the reader's local DRAM after a remote hit.
  bool promote_on_remote_hit = false;
  /// Disables the SSD tier entirely (DRAM evictions drop instead of spill).
  bool enable_ssd = true;
  /// Serialization/deserialization service time per cached artifact,
  /// modeled as a single shared server: concurrent requests queue. The
  /// paper calls this out explicitly ("Significant latency is incurred due
  /// to the serialization required to stash objects", §8) and it is what
  /// makes cached query time grow linearly with candidate count in
  /// Table 2. 0 disables the bottleneck.
  double serialization_service_seconds = 0.0;
  /// Registry the manager reports ids_cache_* metrics into; nullptr means
  /// telemetry::MetricsRegistry::global().
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Instance label on every metric (`cache="..."`), so multiple caches
  /// (e.g. the two clusters of a CrossClusterBridge) stay distinguishable
  /// in one registry. Empty = auto-assigned "cache<N>".
  std::string name;
};

/// Placement hint for put(): pin the first copy to a specific node
/// ("user-provided hints or operator-defined policies", §3.2).
struct PlacementHint {
  int target_node = -1;  // -1: the writing node
};

class CacheManager {
 public:
  explicit CacheManager(CacheConfig config);

  const CacheConfig& config() const { return config_; }

  /// Stores `payload` under `name`, cached on the hint node (default: the
  /// caller's node) and written through to backing storage. Charges
  /// `clock` for every modeled transfer. Overwrites any existing object.
  void put(sim::VirtualClock& clock, int node, std::string_view name,
           std::string payload, PlacementHint hint = {}) IDS_EXCLUDES(mutex_);

  /// Fetches the object, charging `clock` for the cheapest available path.
  /// nullopt = total miss (not cached anywhere and not in backing store);
  /// the caller is expected to recompute and put().
  std::optional<std::string> get(sim::VirtualClock& clock, int node,
                                 std::string_view name) IDS_EXCLUDES(mutex_);

  /// True if a get() would succeed (any tier or backing store).
  bool contains(std::string_view name) const IDS_EXCLUDES(mutex_);

  /// Locality query: where are copies of this object right now? Used by
  /// schedulers to co-locate computation with data (§3.2).
  std::vector<Location> locations(std::string_view name) const
      IDS_EXCLUDES(mutex_);

  /// The cheapest node to read the object from `from_node`'s perspective,
  /// or -1 if the object is only in the backing store / absent.
  int nearest_node_with(std::string_view name, int from_node) const
      IDS_EXCLUDES(mutex_);

  /// Modeled cost of a get() issued from `node` right now, without
  /// performing it (no stats, no LRU effect). Schedulers use this to
  /// co-locate computation with data (§3.2 / §8). Returns the recompute
  /// sentinel sim::Nanos max for objects that are absent everywhere.
  sim::Nanos estimated_get_cost(int node, std::string_view name) const
      IDS_EXCLUDES(mutex_);

  /// Drops every cached copy held by `node` (its DRAM region on the FAM
  /// server and its SSD). Backing-store contents are unaffected; the next
  /// get() re-populates from backing, which is the paper's recovery story.
  void fail_node(int node) IDS_EXCLUDES(mutex_);

  /// Removes the object from all tiers and the backing store.
  void invalidate(std::string_view name) IDS_EXCLUDES(mutex_);

  /// Explicitly relocates an object's DRAM copy to `target_node`
  /// (operator-policy data movement, §3.2). No-op if not DRAM-resident.
  void relocate(sim::VirtualClock& clock, std::string_view name,
                int target_node) IDS_EXCLUDES(mutex_);

  /// Snapshot of the counters since the last reset_stats(). The live
  /// counters are telemetry registry instruments (monotonic, shared with
  /// the Prometheus exposition); this returns their delta against the
  /// baseline captured by reset_stats(), so existing exact-count tests
  /// keep working while the registry view never rewinds.
  CacheStats stats() const IDS_EXCLUDES(mutex_);
  void reset_stats() IDS_EXCLUDES(mutex_);

  std::uint64_t dram_used(int node) const IDS_EXCLUDES(mutex_);
  std::uint64_t ssd_used(int node) const IDS_EXCLUDES(mutex_);
  std::size_t num_objects() const IDS_EXCLUDES(mutex_);

 private:
  struct Meta {
    std::string name;
    std::uint64_t size = 0;
    std::vector<Location> copies;
    bool in_backing = false;
  };
  struct NodeState {
    std::list<ObjectId> dram_lru;  // front = most recently used
    std::unordered_map<ObjectId, std::list<ObjectId>::iterator, ObjectIdHash>
        dram_pos;
    std::uint64_t dram_used = 0;
    std::list<ObjectId> ssd_lru;
    std::unordered_map<ObjectId, std::list<ObjectId>::iterator, ObjectIdHash>
        ssd_pos;
    std::unordered_map<ObjectId, std::string, ObjectIdHash> ssd_data;
    std::uint64_t ssd_used = 0;
  };

  /// FAM allocation name for a (object, node) DRAM copy.
  static std::string fam_name(ObjectId id, int node);

  int directory_node(ObjectId id) const {
    return static_cast<int>(id.value % static_cast<std::uint64_t>(config_.num_nodes));
  }
  /// Charges the metadata round trip when the directory shard is remote.
  /// Reads only immutable config, so it needs no lock of its own.
  void charge_directory_lookup(sim::VirtualClock& clock, int node,
                               ObjectId id) const;

  /// Charges the per-artifact (de)serialization latency.
  /// No-op when serialization_service_seconds is 0.
  ///
  /// IDS_MAY_BLOCK: this models a round trip to the *shared* serialization
  /// service the paper calls out as the cache bottleneck (§8) — in a real
  /// deployment it stalls on the service queue, so it must never run with
  /// mutex_ held (the [blocking-under-lock] analyzer rule enforces this;
  /// get()/put() charge it outside their critical sections).
  void charge_serialization(sim::VirtualClock& clock) IDS_MAY_BLOCK;

  /// get() body; charge_serialization of the fetched artifact is the
  /// caller's job, outside the critical section.
  std::optional<std::string> get_locked(sim::VirtualClock& clock, int node,
                                        std::string_view name)
      IDS_REQUIRES(mutex_);

  // All helpers below require mutex_ held (machine-checked under Clang).
  // The placement helpers return Status instead of asserting: a directory
  // entry that went missing or a FAM-side failure is *recoverable* (the
  // authoritative copy lives in the backing store), so the public
  // operations degrade to an uncached read/write instead of aborting.
  void touch_dram(int node, ObjectId id) IDS_REQUIRES(mutex_);
  void touch_ssd(int node, ObjectId id) IDS_REQUIRES(mutex_);
  bool read_dram_copy(sim::VirtualClock& clock, int reader_node, int owner_node,
                      const Meta& meta, std::string* out) const
      IDS_REQUIRES(mutex_);
  Status insert_dram(sim::VirtualClock& clock, int node, ObjectId id,
                     Meta& meta, const std::string& payload)
      IDS_REQUIRES(mutex_);
  Status evict_dram_lru(sim::VirtualClock& clock, int node)
      IDS_REQUIRES(mutex_);
  Status insert_ssd(int node, ObjectId id, Meta& meta, std::string payload)
      IDS_REQUIRES(mutex_);
  void drop_copy(ObjectId id, Meta& meta, const Location& loc)
      IDS_REQUIRES(mutex_);
  void remove_copy_record(Meta& meta, const Location& loc)
      IDS_REQUIRES(mutex_);

  /// ids_cache_* instruments in the configured registry, labeled with
  /// this cache's instance name. Resolved once at construction; the
  /// increments themselves are lock-free atomics.
  struct Telemetry {
    telemetry::Counter* hits_local_dram;
    telemetry::Counter* hits_local_ssd;
    telemetry::Counter* hits_remote_dram;
    telemetry::Counter* hits_remote_ssd;
    telemetry::Counter* hits_backing;
    telemetry::Counter* misses;
    telemetry::Counter* puts;
    telemetry::Counter* spills_to_ssd;
    telemetry::Counter* ssd_drops;
    telemetry::Counter* promotions;
    telemetry::Counter* bytes_read;
    telemetry::Counter* bytes_written;
    // ids_cache_tier_read_bytes_total{cache,tier}: read-path payload
    // bytes attributed to the serving tier (per-query accounting).
    telemetry::Counter* read_bytes_local_dram;
    telemetry::Counter* read_bytes_local_ssd;
    telemetry::Counter* read_bytes_remote_dram;
    telemetry::Counter* read_bytes_remote_ssd;
    telemetry::Counter* read_bytes_backing;
  };

  /// Current absolute values of the registry counters as a CacheStats.
  CacheStats counters_snapshot() const;

  CacheConfig config_;
  Telemetry tele_;
  // Internally synchronized; acquired strictly *after* mutex_ (the FAM
  // layer never calls back into the cache, so the order cannot invert).
  std::unique_ptr<fam::FamService> fam_;
  mutable Mutex mutex_;
  std::unordered_map<ObjectId, Meta, ObjectIdHash> directory_
      IDS_GUARDED_BY(mutex_);
  std::unordered_map<ObjectId, std::string, ObjectIdHash> backing_
      IDS_GUARDED_BY(mutex_);
  std::vector<NodeState> nodes_ IDS_GUARDED_BY(mutex_);
  /// Counter values at the last reset_stats(); stats() reports the delta.
  CacheStats baseline_ IDS_GUARDED_BY(mutex_);
};

}  // namespace ids::cache
