#include "cache/stats.h"

#include <sstream>

namespace ids::cache {

std::string CacheStats::to_string() const {
  std::ostringstream os;
  os << "hits{local_dram=" << hits_local_dram << " local_ssd=" << hits_local_ssd
     << " remote_dram=" << hits_remote_dram << " remote_ssd=" << hits_remote_ssd
     << " backing=" << hits_backing << "} misses=" << misses
     << " puts=" << puts << " spills=" << spills_to_ssd
     << " ssd_drops=" << ssd_drops << " promotions=" << promotions
     << " bytes{r=" << bytes_read << " w=" << bytes_written << "}";
  return os.str();
}

}  // namespace ids::cache
