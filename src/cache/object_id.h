#pragma once

// Cache object identity.
//
// §3.2: "Each cached object is addressed by its object name/path and a
// computed object hash (object ID)". The id is a stable 64-bit hash of the
// name; helpers mirror the TR-Cache C API's hash/ID functions.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/hash.h"

namespace ids::cache {

struct ObjectId {
  std::uint64_t value = 0;

  friend bool operator==(const ObjectId&, const ObjectId&) = default;
  friend bool operator<(const ObjectId& a, const ObjectId& b) {
    return a.value < b.value;
  }
};

/// Computes the object id for a name/path. Stable across runs/platforms.
inline ObjectId object_id(std::string_view name) {
  return ObjectId{mix64(fnv1a64(name))};
}

struct ObjectIdHash {
  std::size_t operator()(const ObjectId& id) const {
    return static_cast<std::size_t>(id.value);
  }
};

}  // namespace ids::cache
