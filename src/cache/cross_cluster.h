#pragma once

// Cross-cluster artifact sharing (§8).
//
// "Researchers working on cluster A might run simulations that result in
// a collection of artifacts that are cached. Other researchers, working
// on cluster B on a different IDS instance could then leverage [them] to
// reproduce results, continue investigations etc."
//
// The bridge federates two clusters' caches: a get() that misses the
// local cluster falls through to the peer cluster (charged at the peer's
// serving cost plus a WAN transfer) and populates the local cache so
// subsequent reads are cluster-local. Writes stay local — the peer is a
// read-through source, which keeps ownership simple: every artifact has
// one home cluster.

#include <optional>
#include <string>
#include <string_view>

#include "cache/manager.h"
#include "telemetry/metrics.h"

namespace ids::cache {

struct BridgeStats {
  std::uint64_t local_hits = 0;
  std::uint64_t peer_fetches = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes_over_wan = 0;
};

class CrossClusterBridge {
 public:
  /// `local` is this cluster's cache, `peer` the remote cluster's. The
  /// default WAN link models a metro-distance connection (30 ms RTT-ish
  /// latency, 1 GB/s). Counters go to `metrics` (nullptr = the global
  /// registry) as ids_bridge_*{bridge=<name>}; an empty name auto-assigns
  /// a distinct "bridge<N>" so instances never merge their series.
  CrossClusterBridge(CacheManager* local, CacheManager* peer,
                     sim::LinkModel wan = {sim::from_millis(30), 1.0e9},
                     telemetry::MetricsRegistry* metrics = nullptr,
                     std::string name = {});

  /// Read-through get: local cluster first, then the peer (+ WAN cost,
  /// + local population so the artifact becomes cluster-local).
  std::optional<std::string> get(sim::VirtualClock& clock, int node,
                                 std::string_view name);

  /// Writes are always local-cluster.
  void put(sim::VirtualClock& clock, int node, std::string_view name,
           std::string payload, PlacementHint hint = {}) {
    local_->put(clock, node, name, std::move(payload), hint);
  }

  /// Snapshot of the bridge counters. The live values are registry
  /// instruments unique to this instance, read lock-free.
  BridgeStats stats() const;

 private:
  CacheManager* local_;
  CacheManager* peer_;
  sim::LinkModel wan_;
  telemetry::Counter* local_hits_;
  telemetry::Counter* peer_fetches_;
  telemetry::Counter* misses_;
  telemetry::Counter* bytes_over_wan_;
};

}  // namespace ids::cache
