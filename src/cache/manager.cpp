#include "cache/manager.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "common/logging.h"
#include "telemetry/profiler.h"

namespace ids::cache {

namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::span<std::byte> as_writable_bytes(std::string& s) {
  return {reinterpret_cast<std::byte*>(s.data()), s.size()};
}

/// Distinct default instance label per cache in construction order, so two
/// caches sharing the global registry never merge their counters.
std::string next_cache_name() {
  static std::atomic<int> seq{0};
  return "cache" + std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

CacheManager::CacheManager(CacheConfig config)
    : config_(std::move(config)),
      nodes_(static_cast<std::size_t>(config_.num_nodes)) {
  IDS_CHECK(config_.num_nodes > 0);
  if (config_.name.empty()) config_.name = next_cache_name();
  auto& registry = config_.metrics != nullptr
                       ? *config_.metrics
                       : telemetry::MetricsRegistry::global();
  auto tier_hits = [&](const char* tier) {
    return registry.counter("ids_cache_hits_total",
                            {{"cache", config_.name}, {"tier", tier}});
  };
  tele_.hits_local_dram = tier_hits("local_dram");
  tele_.hits_local_ssd = tier_hits("local_ssd");
  tele_.hits_remote_dram = tier_hits("remote_dram");
  tele_.hits_remote_ssd = tier_hits("remote_ssd");
  tele_.hits_backing = tier_hits("backing");
  auto cache_counter = [&](const char* metric) {
    return registry.counter(metric, {{"cache", config_.name}});
  };
  tele_.misses = cache_counter("ids_cache_misses_total");
  tele_.puts = cache_counter("ids_cache_puts_total");
  tele_.spills_to_ssd = cache_counter("ids_cache_spills_total");
  tele_.ssd_drops = cache_counter("ids_cache_ssd_drops_total");
  tele_.promotions = cache_counter("ids_cache_promotions_total");
  tele_.bytes_read = cache_counter("ids_cache_read_bytes_total");
  tele_.bytes_written = cache_counter("ids_cache_written_bytes_total");
  auto tier_read_bytes = [&](const char* tier) {
    return registry.counter("ids_cache_tier_read_bytes_total",
                            {{"cache", config_.name}, {"tier", tier}});
  };
  tele_.read_bytes_local_dram = tier_read_bytes("local_dram");
  tele_.read_bytes_local_ssd = tier_read_bytes("local_ssd");
  tele_.read_bytes_remote_dram = tier_read_bytes("remote_dram");
  tele_.read_bytes_remote_ssd = tier_read_bytes("remote_ssd");
  tele_.read_bytes_backing = tier_read_bytes("backing");

  fam::FamOptions fam_opts;
  fam_opts.server_nodes.resize(static_cast<std::size_t>(config_.num_nodes));
  for (int i = 0; i < config_.num_nodes; ++i) {
    fam_opts.server_nodes[static_cast<std::size_t>(i)] = i;
  }
  fam_opts.server_capacity_bytes = config_.dram_capacity_bytes;
  fam_opts.fabric = config_.fabric;
  fam_opts.metrics = config_.metrics;
  fam_ = std::make_unique<fam::FamService>(std::move(fam_opts));
}

CacheStats CacheManager::counters_snapshot() const {
  CacheStats s;
  s.hits_local_dram = tele_.hits_local_dram->value();
  s.hits_local_ssd = tele_.hits_local_ssd->value();
  s.hits_remote_dram = tele_.hits_remote_dram->value();
  s.hits_remote_ssd = tele_.hits_remote_ssd->value();
  s.hits_backing = tele_.hits_backing->value();
  s.misses = tele_.misses->value();
  s.puts = tele_.puts->value();
  s.spills_to_ssd = tele_.spills_to_ssd->value();
  s.ssd_drops = tele_.ssd_drops->value();
  s.promotions = tele_.promotions->value();
  s.bytes_read = tele_.bytes_read->value();
  s.bytes_written = tele_.bytes_written->value();
  s.read_bytes_local_dram = tele_.read_bytes_local_dram->value();
  s.read_bytes_local_ssd = tele_.read_bytes_local_ssd->value();
  s.read_bytes_remote_dram = tele_.read_bytes_remote_dram->value();
  s.read_bytes_remote_ssd = tele_.read_bytes_remote_ssd->value();
  s.read_bytes_backing = tele_.read_bytes_backing->value();
  return s;
}

CacheStats CacheManager::stats() const {
  MutexLock lock(mutex_);
  return counters_snapshot().since(baseline_);
}

void CacheManager::reset_stats() {
  MutexLock lock(mutex_);
  baseline_ = counters_snapshot();
}

std::string CacheManager::fam_name(ObjectId id, int node) {
  return "cache/" + std::to_string(id.value) + "/" + std::to_string(node);
}

void CacheManager::charge_serialization(sim::VirtualClock& clock) {
  if (config_.serialization_service_seconds <= 0.0) return;
  // Per-operation (de)serialization latency on the caller. The *shared-
  // server queueing* effect of the single serialization service (which
  // caps aggregate throughput at 1/service ops/s) is modeled by the query
  // engine at stage level, where virtual arrival times are known — a
  // stateful queue here would be order-sensitive with respect to the
  // thread-pool execution order of ranks and break virtual-time causality.
  clock.advance(sim::from_seconds(config_.serialization_service_seconds));
}

void CacheManager::charge_directory_lookup(sim::VirtualClock& clock, int node,
                                           ObjectId id) const {
  if (directory_node(id) == node) return;
  // Small-message metadata round trip over the fabric.
  clock.advance(config_.fabric.inter_node.transfer_cost(64) * 2);
}

void CacheManager::touch_dram(int node, ObjectId id) {
  auto& ns = nodes_[static_cast<std::size_t>(node)];
  auto it = ns.dram_pos.find(id);
  if (it == ns.dram_pos.end()) return;
  ns.dram_lru.erase(it->second);
  ns.dram_lru.push_front(id);
  it->second = ns.dram_lru.begin();
}

void CacheManager::touch_ssd(int node, ObjectId id) {
  auto& ns = nodes_[static_cast<std::size_t>(node)];
  auto it = ns.ssd_pos.find(id);
  if (it == ns.ssd_pos.end()) return;
  ns.ssd_lru.erase(it->second);
  ns.ssd_lru.push_front(id);
  it->second = ns.ssd_lru.begin();
}

bool CacheManager::read_dram_copy(sim::VirtualClock& clock, int reader_node,
                                  int owner_node, const Meta& meta,
                                  std::string* out) const {
  auto desc = fam_->lookup(fam_name(object_id(meta.name), owner_node));
  if (!desc.ok()) return false;
  out->resize(meta.size);
  Status st = fam_->get(clock, reader_node, desc.value(), 0,
                        as_writable_bytes(*out));
  return st.ok();
}

void CacheManager::remove_copy_record(Meta& meta, const Location& loc) {
  meta.copies.erase(std::remove(meta.copies.begin(), meta.copies.end(), loc),
                    meta.copies.end());
}

void CacheManager::drop_copy(ObjectId id, Meta& meta, const Location& loc) {
  auto& ns = nodes_[static_cast<std::size_t>(loc.node)];
  if (loc.tier == TierKind::kDram) {
    auto it = ns.dram_pos.find(id);
    if (it != ns.dram_pos.end()) {
      ns.dram_lru.erase(it->second);
      ns.dram_pos.erase(it);
      ns.dram_used -= meta.size;
    }
    // The FAM region may already be gone after fail_node(); either way
    // the copy record is dropped below.
    IDS_IGNORE_ERROR(fam_->deallocate(fam_name(id, loc.node)));
  } else {
    auto it = ns.ssd_pos.find(id);
    if (it != ns.ssd_pos.end()) {
      ns.ssd_lru.erase(it->second);
      ns.ssd_pos.erase(it);
      ns.ssd_data.erase(id);
      ns.ssd_used -= meta.size;
    }
  }
  remove_copy_record(meta, loc);
}

Status CacheManager::evict_dram_lru(sim::VirtualClock& clock, int node) {
  auto& ns = nodes_[static_cast<std::size_t>(node)];
  if (ns.dram_lru.empty()) return Status::Ok();
  ObjectId victim = ns.dram_lru.back();
  auto dit = directory_.find(victim);
  if (dit == directory_.end()) {
    // The directory lost track of the LRU victim. Recover by dropping the
    // orphaned LRU entry (its bytes are unaccounted anyway) so the caller
    // can keep evicting instead of looping on the same victim.
    ns.dram_pos.erase(victim);
    ns.dram_lru.pop_back();
    return Status::Internal("DRAM LRU victim missing from cache directory");
  }
  Meta& meta = dit->second;

  // Demote to the same node's SSD (spill), or drop if SSD is disabled.
  std::string payload;
  sim::VirtualClock scratch;  // local DRAM read folded into the SSD charge
  bool have = read_dram_copy(scratch, node, node, meta, &payload);
  drop_copy(victim, meta, Location{node, TierKind::kDram});
  if (have && config_.enable_ssd && meta.size <= config_.ssd_capacity_bytes) {
    clock.advance(config_.fabric.local_ssd.transfer_cost(meta.size));
    RETURN_IF_ERROR(insert_ssd(node, victim, meta, std::move(payload)));
    tele_.spills_to_ssd->inc();
  }
  return Status::Ok();
}

Status CacheManager::insert_ssd(int node, ObjectId id, Meta& meta,
                                std::string payload) {
  // Policy skips (tier disabled, object larger than the tier) are not
  // errors: the object simply stays wherever it already is.
  if (!config_.enable_ssd || meta.size > config_.ssd_capacity_bytes) {
    return Status::Ok();
  }
  auto& ns = nodes_[static_cast<std::size_t>(node)];
  Location loc{node, TierKind::kSsd};
  if (ns.ssd_pos.contains(id)) return Status::Ok();  // already there
  while (ns.ssd_used + meta.size > config_.ssd_capacity_bytes &&
         !ns.ssd_lru.empty()) {
    ObjectId victim = ns.ssd_lru.back();
    auto dit = directory_.find(victim);
    if (dit == directory_.end()) {
      ns.ssd_pos.erase(victim);
      ns.ssd_data.erase(victim);
      ns.ssd_lru.pop_back();
      return Status::Internal("SSD LRU victim missing from cache directory");
    }
    drop_copy(victim, dit->second, Location{node, TierKind::kSsd});
    tele_.ssd_drops->inc();
  }
  if (ns.ssd_used + meta.size > config_.ssd_capacity_bytes) {
    return Status::Ok();
  }
  ns.ssd_lru.push_front(id);
  ns.ssd_pos[id] = ns.ssd_lru.begin();
  ns.ssd_data[id] = std::move(payload);
  ns.ssd_used += meta.size;
  meta.copies.push_back(loc);
  return Status::Ok();
}

Status CacheManager::insert_dram(sim::VirtualClock& clock, int node,
                                 ObjectId id, Meta& meta,
                                 const std::string& payload) {
  if (meta.size > config_.dram_capacity_bytes) {
    // Too big for the DRAM tier entirely; go straight to SSD.
    return insert_ssd(node, id, meta, payload);
  }
  auto& ns = nodes_[static_cast<std::size_t>(node)];
  if (ns.dram_pos.contains(id)) return Status::Ok();  // already resident
  while (ns.dram_used + meta.size > config_.dram_capacity_bytes &&
         !ns.dram_lru.empty()) {
    RETURN_IF_ERROR(evict_dram_lru(clock, node));
  }
  auto desc = fam_->allocate(fam_name(id, node), meta.size, node);
  if (!desc.ok()) return desc.status();
  Status st = fam_->put(clock, node, desc.value(), 0, as_bytes(payload));
  if (!st.ok()) {
    IDS_IGNORE_ERROR(fam_->deallocate(fam_name(id, node)));
    return st;
  }
  ns.dram_lru.push_front(id);
  ns.dram_pos[id] = ns.dram_lru.begin();
  ns.dram_used += meta.size;
  meta.copies.push_back(Location{node, TierKind::kDram});
  return Status::Ok();
}

void CacheManager::put(sim::VirtualClock& clock, int node,
                       std::string_view name, std::string payload,
                       PlacementHint hint) {
  telemetry::ProfileScope profile_scope("cache.put");
  // Serialize the artifact *before* entering the critical section: the
  // serialization service is a shared blocking server (the paper's §8
  // bottleneck) and must not stall every other cache client behind
  // mutex_. Virtual-clock advances commute, so the modeled total is
  // unchanged.
  charge_serialization(clock);

  MutexLock lock(mutex_);
  ObjectId id = object_id(name);
  charge_directory_lookup(clock, node, id);

  auto [it, inserted] = directory_.try_emplace(id);
  Meta& meta = it->second;
  if (!inserted) {
    // Overwrite: drop all existing copies first.
    while (!meta.copies.empty()) drop_copy(id, meta, meta.copies.front());
  }
  meta.name = std::string(name);
  meta.size = payload.size();

  if (config_.write_through) {
    clock.advance(config_.fabric.backing_store.transfer_cost(payload.size()));
    backing_[id] = payload;
    meta.in_backing = true;
  }

  int target = hint.target_node >= 0 ? hint.target_node : node;
  target = std::min(std::max(target, 0), config_.num_nodes - 1);
  Status placed = insert_dram(clock, target, id, meta, payload);
  if (!placed.ok()) {
    // Degraded but recoverable: the object is still authoritative in the
    // backing store (write_through) and will re-cache on a later get().
    IDS_WARN << "cache put of " << meta.name
             << " left uncached: " << placed.to_string();
  }

  tele_.puts->inc();
  tele_.bytes_written->inc(payload.size());
}

std::optional<std::string> CacheManager::get(sim::VirtualClock& clock,
                                             int node, std::string_view name) {
  telemetry::ProfileScope profile_scope("cache.get");
  std::optional<std::string> hit;
  {
    MutexLock lock(mutex_);
    hit = get_locked(clock, node, name);
  }
  // Deserialize the fetched artifact outside the critical section (see
  // charge_serialization: the shared service blocks, and every hit tier
  // pays exactly one deserialization). Advances commute, so hoisting the
  // charge out of get_locked leaves the modeled total bit-identical.
  if (hit.has_value()) charge_serialization(clock);
  return hit;
}

std::optional<std::string> CacheManager::get_locked(sim::VirtualClock& clock,
                                                    int node,
                                                    std::string_view name) {
  ObjectId id = object_id(name);
  charge_directory_lookup(clock, node, id);

  auto it = directory_.find(id);
  if (it == directory_.end()) {
    tele_.misses->inc();
    return std::nullopt;
  }
  Meta& meta = it->second;

  auto has_copy = [&meta](int n, TierKind t) {
    return std::find(meta.copies.begin(), meta.copies.end(),
                     Location{n, t}) != meta.copies.end();
  };

  std::string payload;

  // 1. Local DRAM.
  if (has_copy(node, TierKind::kDram) &&
      read_dram_copy(clock, node, node, meta, &payload)) {
    touch_dram(node, id);
    tele_.hits_local_dram->inc();
    tele_.bytes_read->inc(meta.size);
    tele_.read_bytes_local_dram->inc(meta.size);
    return payload;
  }

  // 2. Local SSD.
  if (has_copy(node, TierKind::kSsd)) {
    auto& ns = nodes_[static_cast<std::size_t>(node)];
    auto sit = ns.ssd_data.find(id);
    if (sit != ns.ssd_data.end()) {
      payload = sit->second;
      clock.advance(config_.fabric.local_ssd.transfer_cost(meta.size));
      touch_ssd(node, id);
      tele_.hits_local_ssd->inc();
      tele_.bytes_read->inc(meta.size);
      tele_.read_bytes_local_ssd->inc(meta.size);
      return payload;
    }
    // Stale copy record (bytes vanished): drop it and fall through to the
    // remaining tiers instead of failing the read.
    drop_copy(id, meta, Location{node, TierKind::kSsd});
  }

  // 3. Remote DRAM (deterministically the lowest-numbered owner).
  int remote_dram = -1;
  int remote_ssd = -1;
  for (const auto& loc : meta.copies) {
    if (loc.node == node) continue;
    if (loc.tier == TierKind::kDram) {
      if (remote_dram < 0 || loc.node < remote_dram) remote_dram = loc.node;
    } else {
      if (remote_ssd < 0 || loc.node < remote_ssd) remote_ssd = loc.node;
    }
  }
  if (remote_dram >= 0 &&
      read_dram_copy(clock, node, remote_dram, meta, &payload)) {
    touch_dram(remote_dram, id);
    tele_.hits_remote_dram->inc();
    tele_.bytes_read->inc(meta.size);
    tele_.read_bytes_remote_dram->inc(meta.size);
    if (config_.promote_on_remote_hit) {
      // Best-effort: a failed promotion still served the read.
      IDS_IGNORE_ERROR(insert_dram(clock, node, id, meta, payload));
      tele_.promotions->inc();
    }
    return payload;
  }

  // 4. Remote SSD: SSD read on the owner, then a fabric transfer.
  if (remote_ssd >= 0 &&
      nodes_[static_cast<std::size_t>(remote_ssd)].ssd_data.contains(id)) {
    auto& ns = nodes_[static_cast<std::size_t>(remote_ssd)];
    payload = ns.ssd_data.at(id);
    clock.advance(config_.fabric.local_ssd.transfer_cost(meta.size) +
                  config_.fabric.inter_node.transfer_cost(meta.size));
    touch_ssd(remote_ssd, id);
    tele_.hits_remote_ssd->inc();
    tele_.bytes_read->inc(meta.size);
    tele_.read_bytes_remote_ssd->inc(meta.size);
    if (config_.promote_on_remote_hit) {
      // Best-effort: a failed promotion still served the read.
      IDS_IGNORE_ERROR(insert_dram(clock, node, id, meta, payload));
      tele_.promotions->inc();
    }
    return payload;
  }

  // 5. Backing store (authoritative). Re-populate the reader's DRAM so a
  // failed node's working set rebuilds as it is touched.
  if (meta.in_backing) {
    auto bit = backing_.find(id);
    if (bit != backing_.end()) {
      payload = bit->second;
      clock.advance(config_.fabric.backing_store.transfer_cost(meta.size));
      tele_.hits_backing->inc();
      tele_.bytes_read->inc(meta.size);
      tele_.read_bytes_backing->inc(meta.size);
      // Best-effort re-population of the reader's DRAM.
      IDS_IGNORE_ERROR(insert_dram(clock, node, id, meta, payload));
      return payload;
    }
    // in_backing flag with no backing bytes: treat as the miss it is.
    meta.in_backing = false;
  }

  tele_.misses->inc();
  return std::nullopt;
}

bool CacheManager::contains(std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = directory_.find(object_id(name));
  if (it == directory_.end()) return false;
  return !it->second.copies.empty() || it->second.in_backing;
}

std::vector<Location> CacheManager::locations(std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = directory_.find(object_id(name));
  if (it == directory_.end()) return {};
  return it->second.copies;
}

sim::Nanos CacheManager::estimated_get_cost(int node,
                                            std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = directory_.find(object_id(name));
  if (it == directory_.end()) return std::numeric_limits<sim::Nanos>::max();
  const Meta& meta = it->second;

  sim::Nanos best = std::numeric_limits<sim::Nanos>::max();
  for (const auto& loc : meta.copies) {
    sim::Nanos c;
    if (loc.tier == TierKind::kDram) {
      c = (loc.node == node ? config_.fabric.intra_node
                            : config_.fabric.inter_node)
              .transfer_cost(meta.size);
    } else {
      c = config_.fabric.local_ssd.transfer_cost(meta.size);
      if (loc.node != node) {
        c += config_.fabric.inter_node.transfer_cost(meta.size);
      }
    }
    best = std::min(best, c);
  }
  if (meta.in_backing) {
    best = std::min(best,
                    config_.fabric.backing_store.transfer_cost(meta.size));
  }
  return best;
}

int CacheManager::nearest_node_with(std::string_view name,
                                    int from_node) const {
  MutexLock lock(mutex_);
  auto it = directory_.find(object_id(name));
  if (it == directory_.end()) return -1;
  const Meta& meta = it->second;
  // Rank: local < remote DRAM < remote SSD; ties to the lower node id.
  int best = -1;
  int best_rank = 1 << 30;
  for (const auto& loc : meta.copies) {
    int rank;
    if (loc.node == from_node) {
      rank = loc.tier == TierKind::kDram ? 0 : 1;
    } else {
      rank = loc.tier == TierKind::kDram ? 2 : 3;
    }
    if (rank < best_rank || (rank == best_rank && loc.node < best)) {
      best_rank = rank;
      best = loc.node;
    }
  }
  return best;
}

void CacheManager::fail_node(int node) {
  MutexLock lock(mutex_);
  // Abrupt loss of the node's fabric-attached DRAM and local SSD.
  fam_->fail_server(node);
  fam_->recover_server(node);
  auto& ns = nodes_[static_cast<std::size_t>(node)];
  ns = NodeState{};
  for (auto& [id, meta] : directory_) {
    meta.copies.erase(
        std::remove_if(meta.copies.begin(), meta.copies.end(),
                       [node](const Location& l) { return l.node == node; }),
        meta.copies.end());
  }
}

void CacheManager::invalidate(std::string_view name) {
  MutexLock lock(mutex_);
  ObjectId id = object_id(name);
  auto it = directory_.find(id);
  if (it == directory_.end()) return;
  Meta& meta = it->second;
  while (!meta.copies.empty()) drop_copy(id, meta, meta.copies.front());
  backing_.erase(id);
  directory_.erase(it);
}

void CacheManager::relocate(sim::VirtualClock& clock, std::string_view name,
                            int target_node) {
  MutexLock lock(mutex_);
  ObjectId id = object_id(name);
  auto it = directory_.find(id);
  if (it == directory_.end()) return;
  Meta& meta = it->second;
  int owner = -1;
  for (const auto& loc : meta.copies) {
    if (loc.tier == TierKind::kDram) {
      owner = loc.node;
      break;
    }
  }
  if (owner < 0 || owner == target_node) return;
  std::string payload;
  if (!read_dram_copy(clock, target_node, owner, meta, &payload)) return;
  drop_copy(id, meta, Location{owner, TierKind::kDram});
  Status moved = insert_dram(clock, target_node, id, meta, payload);
  if (!moved.ok()) {
    IDS_WARN << "cache relocate of " << meta.name
             << " dropped the DRAM copy: " << moved.to_string();
  }
}

std::uint64_t CacheManager::dram_used(int node) const {
  MutexLock lock(mutex_);
  return nodes_[static_cast<std::size_t>(node)].dram_used;
}

std::uint64_t CacheManager::ssd_used(int node) const {
  MutexLock lock(mutex_);
  return nodes_[static_cast<std::size_t>(node)].ssd_used;
}

std::size_t CacheManager::num_objects() const {
  MutexLock lock(mutex_);
  return directory_.size();
}

}  // namespace ids::cache
