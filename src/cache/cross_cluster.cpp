#include "cache/cross_cluster.h"

#include <atomic>

namespace ids::cache {

namespace {

std::string next_bridge_name() {
  static std::atomic<int> seq{0};
  return "bridge" + std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

CrossClusterBridge::CrossClusterBridge(CacheManager* local, CacheManager* peer,
                                       sim::LinkModel wan,
                                       telemetry::MetricsRegistry* metrics,
                                       std::string name)
    : local_(local), peer_(peer), wan_(wan) {
  auto& registry =
      metrics != nullptr ? *metrics : telemetry::MetricsRegistry::global();
  if (name.empty()) name = next_bridge_name();
  auto bridge_counter = [&](const char* metric) {
    return registry.counter(metric, {{"bridge", name}});
  };
  local_hits_ = bridge_counter("ids_bridge_local_hits_total");
  peer_fetches_ = bridge_counter("ids_bridge_peer_fetches_total");
  misses_ = bridge_counter("ids_bridge_misses_total");
  bytes_over_wan_ = bridge_counter("ids_bridge_wan_bytes_total");
}

BridgeStats CrossClusterBridge::stats() const {
  BridgeStats s;
  s.local_hits = local_hits_->value();
  s.peer_fetches = peer_fetches_->value();
  s.misses = misses_->value();
  s.bytes_over_wan = bytes_over_wan_->value();
  return s;
}

std::optional<std::string> CrossClusterBridge::get(sim::VirtualClock& clock,
                                                   int node,
                                                   std::string_view name) {
  // The underlying caches synchronize themselves; the bridge counters are
  // lock-free registry instruments, so the bridge itself needs no mutex.
  if (auto payload = local_->get(clock, node, name)) {
    local_hits_->inc();
    return payload;
  }

  // Peer fetch: the peer cluster serves it from its best tier (charged on
  // our clock — we wait for the peer's storage plus the WAN transfer),
  // entering the peer at its gateway node 0.
  auto payload = peer_->get(clock, /*node=*/0, name);
  if (!payload) {
    misses_->inc();
    return std::nullopt;
  }
  clock.advance(wan_.transfer_cost(payload->size()));
  peer_fetches_->inc();
  bytes_over_wan_->inc(payload->size());

  // Populate the local cluster so the next read is cluster-local.
  local_->put(clock, node, name, *payload);
  return payload;
}

}  // namespace ids::cache
