#include "cache/cross_cluster.h"

namespace ids::cache {

std::optional<std::string> CrossClusterBridge::get(sim::VirtualClock& clock,
                                                   int node,
                                                   std::string_view name) {
  // The underlying caches synchronize themselves; mutex_ only guards the
  // bridge counters, so it is taken briefly around each update rather than
  // across the (potentially slow, peer-blocking) cache calls.
  if (auto payload = local_->get(clock, node, name)) {
    MutexLock lock(mutex_);
    ++stats_.local_hits;
    return payload;
  }

  // Peer fetch: the peer cluster serves it from its best tier (charged on
  // our clock — we wait for the peer's storage plus the WAN transfer),
  // entering the peer at its gateway node 0.
  auto payload = peer_->get(clock, /*node=*/0, name);
  if (!payload) {
    MutexLock lock(mutex_);
    ++stats_.misses;
    return std::nullopt;
  }
  clock.advance(wan_.transfer_cost(payload->size()));
  {
    MutexLock lock(mutex_);
    ++stats_.peer_fetches;
    stats_.bytes_over_wan += payload->size();
  }

  // Populate the local cluster so the next read is cluster-local.
  local_->put(clock, node, name, *payload);
  return payload;
}

}  // namespace ids::cache
