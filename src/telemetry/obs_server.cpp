#include "telemetry/obs_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/query_stats.h"
#include "telemetry/trace.h"

namespace ids::telemetry {

namespace {

/// "fmt" query parameter ("" when absent), from a raw query string like
/// "fmt=folded&x=1". Good enough for a debug plane; no URL decoding.
std::string_view fmt_param(std::string_view query) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair = query.substr(0, amp);
    if (pair.substr(0, 4) == "fmt=") return pair.substr(4);
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return {};
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    default: return "Error";
  }
}

}  // namespace

ObsServer::ObsServer(ObsServerOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? *options_.metrics
                                           : MetricsRegistry::global()),
      profiler_(options_.profiler != nullptr ? *options_.profiler
                                             : Profiler::global()) {}

ObsServer::~ObsServer() { stop(); }

Status ObsServer::start() {
  MutexLock lock(control_mutex_);
  if (server_.joinable()) {
    return Status::FailedPrecondition("obs server already running");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::Unavailable(std::string("bind: ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::Unavailable(std::string("getsockname: ") +
                               std::strerror(err));
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Unavailable(std::string("listen: ") + std::strerror(err));
  }

  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  start_wall_ns_.store(Tracer::wall_now_ns(), std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  listen_fd_.store(fd, std::memory_order_release);
  server_ = std::thread([this] { serve_loop(); });
  return Status::Ok();
}

void ObsServer::stop() {
  std::thread joinable;
  {
    MutexLock lock(control_mutex_);
    if (!server_.joinable()) return;  // never started, or already stopped
    stopping_.store(true, std::memory_order_release);
    const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
      // Unblocks the accept() in serve_loop so the join below is bounded.
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    joinable = std::move(server_);
  }
  joinable.join();  // outside the lock: never block while holding it
}

bool ObsServer::running() const {
  MutexLock lock(control_mutex_);
  return server_.joinable();
}

void ObsServer::serve_loop() {
  for (;;) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0 || stopping_.load(std::memory_order_acquire)) return;

    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR) continue;
      return;  // listener closed under us or unrecoverable
    }

    // A stalled client must not wedge the (single) serving thread.
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

    // Read until the end of the request head (or a sane cap). We only
    // need the request line; headers and any body are ignored.
    std::string request;
    char buf[2048];
    while (request.find("\r\n") == std::string::npos &&
           request.size() < 16 * 1024) {
      const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
      if (n <= 0) break;
      request.append(buf, static_cast<std::size_t>(n));
    }

    Response response;
    const std::size_t line_end = request.find("\r\n");
    const std::string_view request_view(request);
    const std::string_view line = request_view.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
      response = Response{404, "text/plain; charset=utf-8",
                          "malformed request\n"};
    } else {
      response = route(line.substr(sp1 + 1, sp2 - sp1 - 1));
    }

    std::ostringstream head;
    head << "HTTP/1.1 " << response.status << ' '
         << status_text(response.status)
         << "\r\nContent-Type: " << response.content_type
         << "\r\nContent-Length: " << response.body.size()
         << "\r\nConnection: close\r\n\r\n";
    const std::string wire = head.str() + response.body;

    std::size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n =
          ::send(conn, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::close(conn);
  }
}

std::string ObsServer::handle(std::string_view target) const {
  return route(target).body;
}

ObsServer::Response ObsServer::route(std::string_view target) const {
  const std::size_t qmark = target.find('?');
  const std::string_view path = target.substr(0, qmark);
  const std::string_view query =
      qmark == std::string_view::npos ? std::string_view{}
                                      : target.substr(qmark + 1);

  if (path == "/" || path.empty()) return handle_index();
  if (path == "/metrics") return handle_metrics();
  if (path == "/statusz") return handle_statusz();
  if (path == "/tracez") return handle_tracez(query);
  if (path == "/profilez") return handle_profilez(query);
  return Response{404, "text/plain; charset=utf-8",
                  "not found: " + std::string(path) +
                      "\nendpoints: /metrics /statusz /tracez /profilez\n"};
}

ObsServer::Response ObsServer::handle_index() const {
  return Response{200, "text/plain; charset=utf-8",
                  "ids observability plane\n"
                  "  /metrics            Prometheus exposition\n"
                  "  /statusz            build/uptime/query accounts JSON\n"
                  "  /tracez[?fmt=json]  recent query span trees\n"
                  "  /profilez[?fmt=folded]  sampling profiler\n"};
}

ObsServer::Response ObsServer::handle_metrics() const {
  return Response{200, "text/plain; version=0.0.4; charset=utf-8",
                  metrics_.to_prometheus()};
}

ObsServer::Response ObsServer::handle_statusz() const {
  const double uptime =
      static_cast<double>(Tracer::wall_now_ns() -
                          start_wall_ns_.load(std::memory_order_acquire)) *
      1e-9;
  std::ostringstream os;
  os << "{\"build_type\":\"" << options_.build_type << "\",\"simd_level\":\""
     << options_.simd_level
     << "\",\"uptime_seconds\":" << format_double(uptime) << ",\"queries\":";
  if (options_.query_stats != nullptr) {
    os << options_.query_stats->to_json();
  } else {
    os << "{\"total\":0,\"recent\":[]}";
  }
  os << ",\"metrics\":" << metrics_.to_json() << '}';
  return Response{200, "application/json", os.str()};
}

ObsServer::Response ObsServer::handle_tracez(std::string_view query) const {
  if (options_.traces == nullptr) {
    return Response{200, "text/plain; charset=utf-8",
                    "tracez: no trace ring attached\n"};
  }
  if (fmt_param(query) == "json") {
    return Response{200, "application/json", options_.traces->to_chrome_json()};
  }
  return Response{200, "text/plain; charset=utf-8",
                  options_.traces->to_text_report()};
}

ObsServer::Response ObsServer::handle_profilez(std::string_view query) const {
  if (fmt_param(query) == "folded") {
    return Response{200, "text/plain; charset=utf-8", profiler_.to_folded()};
  }
  return Response{200, "application/json", profiler_.to_json_top()};
}

}  // namespace ids::telemetry
