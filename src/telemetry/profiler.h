#pragma once

// Sampling wall-clock profiler with flamegraph export (ISSUE 9 tentpole).
//
// Cooperative, signal-free design: instrumented code pushes RAII
// ProfileScope frames onto a per-thread shadow stack, and a background
// sampler thread walks every registered shadow stack at a configurable
// rate, aggregating the frame paths it sees into collapsed-stack
// ("folded") counts. Because both sides use ordinary ids::Mutex
// critical sections — no signals, no asynchronous stack unwinding —
// the profiler is clean under ASan and TSan and safe to leave compiled
// into every build.
//
//   ProfileScope s("engine.scan");   // push; pops on scope exit
//
// Scope names must be string literals (or otherwise outlive the
// profiler): the shadow stack stores `const char*` so pushing is two
// stores, never an allocation. Threads register lazily on their first
// push and are never unregistered — thread-pool workers are immortal
// in this codebase, and an exited thread's stack simply sits at depth
// zero, which the sampler skips (idle threads contribute no samples,
// so every sample lands in a named scope).
//
// Exports:
//   to_folded()    — Brendan Gregg collapsed-stack text
//                    ("a;b;c <count>\n"), feed to flamegraph.pl or
//                    speedscope.
//   to_json_top(n) — top-N frames by self samples with self/total
//                    counts, for /profilez.
//
// The sampler thread is paced by CondVar::wait_for (tools/lint.sh bans
// raw sleep_for in src/), so stop() interrupts a tick immediately.
// Lock order: control_mutex_ -> data_mutex_ -> per-thread stack mutex;
// no callback ever runs under a profiler lock.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace ids::telemetry {

/// Shadow-stack frames deeper than this are counted but not recorded;
/// the sample path gains a trailing "[truncated]" frame instead.
inline constexpr std::size_t kMaxProfileDepth = 32;

struct ProfileThreadStack;  // defined in profiler.cpp

/// Process-wide sampling profiler. A singleton by design: ProfileScope
/// binds the global instance through one thread-local slot, so a second
/// instance would silently share shadow stacks. Tests drive the
/// singleton with clear()/set_enabled() and direct sample_once() calls.
class Profiler {
 public:
  static constexpr double kDefaultHertz = 97.0;  // co-prime with 10ms tickers

  static Profiler& global();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Master switch consulted by ProfileScope before touching any shadow
  /// stack. Off by default: a disabled profiler costs one relaxed load
  /// per scope.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Starts the background sampler at `hertz` samples per second.
  /// Idempotent: a second start() while running is a no-op (the original
  /// rate is kept). Implies set_enabled(true). IDS_MAY_BLOCK: spawns the
  /// sampler thread — never call under a lock.
  void start(double hertz = kDefaultHertz) IDS_MAY_BLOCK
      IDS_EXCLUDES(control_mutex_);

  /// Stops and joins the sampler thread. Idempotent; collected samples
  /// are retained for export. Disables scope collection.
  void stop() IDS_MAY_BLOCK IDS_EXCLUDES(control_mutex_);

  bool running() const IDS_EXCLUDES(control_mutex_);

  /// Takes one sample of every registered shadow stack right now.
  /// Exposed so tests aggregate deterministically without the timer.
  void sample_once() IDS_EXCLUDES(data_mutex_);

  /// Drops all aggregated samples (shadow stacks and registrations are
  /// kept). Sampler may stay running.
  void clear() IDS_EXCLUDES(data_mutex_);

  /// Stack samples aggregated so far (one per non-idle thread per tick).
  std::uint64_t samples_total() const IDS_EXCLUDES(data_mutex_);
  /// Sampler ticks taken (sample_once calls), including all-idle ones.
  std::uint64_t ticks_total() const IDS_EXCLUDES(data_mutex_);

  /// Collapsed-stack flamegraph text, one "frame;frame;... count" line
  /// per distinct path, sorted by path for determinism.
  std::string to_folded() const IDS_EXCLUDES(data_mutex_);

  /// JSON top table: {"samples_total":..,"ticks_total":..,"top":[
  /// {"frame":..,"self":..,"total":..},..]} — `self` counts samples with
  /// the frame on top, `total` samples with it anywhere; sorted by self
  /// descending then frame name, at most `top_n` rows.
  std::string to_json_top(std::size_t top_n = 20) const
      IDS_EXCLUDES(data_mutex_);

  // ProfileScope internals -- not for direct use.
  void push_frame(const char* name);
  void pop_frame();

 private:
  Profiler() = default;
  ~Profiler() = delete;  // leaked singleton; worker threads may outlive main

  ProfileThreadStack* register_thread() IDS_EXCLUDES(data_mutex_);
  /// Paces on tick_mutex_ only — it must never touch control_mutex_,
  /// which start() holds while spawning the sampler thread.
  void sampler_loop(std::chrono::nanoseconds period)
      IDS_EXCLUDES(tick_mutex_, data_mutex_);

  std::atomic<bool> enabled_{false};

  // Lock order: control_mutex_ -> tick_mutex_; data_mutex_ and the
  // per-thread stack mutexes are only ever taken with neither held.
  mutable Mutex control_mutex_;
  std::thread sampler_ IDS_GUARDED_BY(control_mutex_);

  mutable Mutex tick_mutex_;
  CondVar tick_cv_;
  bool stop_requested_ IDS_GUARDED_BY(tick_mutex_) = false;

  mutable Mutex data_mutex_;
  std::vector<std::unique_ptr<ProfileThreadStack>> stacks_
      IDS_GUARDED_BY(data_mutex_);
  // Collapsed path ("a;b;c") -> sample count. std::map keeps exports
  // deterministically sorted.
  std::map<std::string, std::uint64_t> folded_ IDS_GUARDED_BY(data_mutex_);
  std::uint64_t samples_ IDS_GUARDED_BY(data_mutex_) = 0;
  std::uint64_t ticks_ IDS_GUARDED_BY(data_mutex_) = 0;
};

/// RAII shadow-stack frame. Constructing pushes `name` onto the calling
/// thread's stack if the global profiler is enabled; destruction pops.
/// `name` must outlive the profiler (use string literals or interned
/// names such as UdfInfo::name).
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) {
    Profiler& p = Profiler::global();
    if (p.enabled()) {
      p.push_frame(name);
      pushed_ = true;  // pop exactly what we pushed, even if disabled later
    }
  }
  ~ProfileScope() {
    if (pushed_) Profiler::global().pop_frame();
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  bool pushed_ = false;
};

}  // namespace ids::telemetry
