#pragma once

// In-process observability HTTP server (ISSUE 9 tentpole).
//
// A deliberately tiny HTTP/1.1 responder on a dedicated thread: one
// blocking accept loop, one request per connection, `Connection: close`.
// It exists so a running engine can be inspected with nothing but curl:
//
//   /metrics   Prometheus text exposition of the metrics registry.
//   /statusz   JSON: build type, SIMD level, uptime, recent query
//              resource accounts, full registry snapshot.
//   /tracez    Text report of the most recent completed query span
//              trees (?fmt=json -> Chrome trace JSON of the newest).
//   /profilez  Sampling-profiler top table (?fmt=folded -> collapsed
//              flamegraph stacks).
//
// Design constraints, in order:
//   * Never perturb the engine: every handler works from thread-safe
//     snapshots (registry exporters, ring snapshots); the server holds
//     no lock across any socket call.
//   * Sockets stay confined to src/telemetry/ — tools/lint.sh bans
//     <sys/socket.h> and friends elsewhere in src/, and the blocking
//     accept/read/write path is IDS_MAY_BLOCK-annotated for the
//     analyzer rather than baselined.
//   * Loopback by default (bind_address 127.0.0.1); this is a debug
//     plane, not a public API.
//
// handle(target) exposes the routing table without sockets so unit
// tests exercise every endpoint in-process; the socket loop is the thin
// transport around it.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>

#include "common/result.h"
#include "common/thread_annotations.h"

namespace ids::telemetry {

class MetricsRegistry;
class Profiler;
class TraceRing;
class QueryStatsRing;

struct ObsServerOptions {
  /// Loopback only by default. "0.0.0.0" opts into external exposure.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; ObsServer::port() reports the choice.
  std::uint16_t port = 0;

  /// nullptr -> the process-global registry / profiler.
  MetricsRegistry* metrics = nullptr;
  Profiler* profiler = nullptr;
  /// Optional rings; endpoints degrade gracefully when absent.
  TraceRing* traces = nullptr;
  QueryStatsRing* query_stats = nullptr;

  /// Stamped into /statusz. Strings (not queried here) because the
  /// telemetry library sits below common/ and cannot call simd::.
  std::string build_type = "unknown";
  std::string simd_level = "unknown";
};

class ObsServer {
 public:
  explicit ObsServer(ObsServerOptions options);
  ~ObsServer();  // stops if still running

  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  /// Binds, listens, and spawns the accept thread. InvalidArgument for a
  /// bad bind address, Unavailable when bind/listen fails (port in use).
  /// IDS_MAY_BLOCK: bind/listen are syscalls and the accept thread is
  /// spawned here — never call under a lock.
  Status start() IDS_MAY_BLOCK IDS_EXCLUDES(control_mutex_);

  /// Shuts the listener down and joins the accept thread. Idempotent.
  void stop() IDS_MAY_BLOCK IDS_EXCLUDES(control_mutex_);

  bool running() const IDS_EXCLUDES(control_mutex_);

  /// The bound port (resolves port 0); valid after a successful start().
  std::uint16_t port() const {
    return port_.load(std::memory_order_acquire);
  }

  /// Routes `target` (path plus optional ?query) to its endpoint and
  /// returns the response body — 404 text for unknown paths. Socketless,
  /// for tests; the accept loop wraps this in HTTP framing.
  std::string handle(std::string_view target) const;

 private:
  struct Response {
    int status = 200;
    const char* content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  Response route(std::string_view target) const;
  Response handle_index() const;
  Response handle_metrics() const;
  Response handle_statusz() const;
  Response handle_tracez(std::string_view query) const;
  Response handle_profilez(std::string_view query) const;

  /// Blocking accept/serve loop; exits when stop() shuts the listener.
  void serve_loop() IDS_MAY_BLOCK;

  const ObsServerOptions options_;
  MetricsRegistry& metrics_;   // resolved (global when options.metrics null)
  Profiler& profiler_;         // resolved likewise
  std::atomic<std::uint64_t> start_wall_ns_{0};
  std::atomic<std::uint16_t> port_{0};

  mutable Mutex control_mutex_;
  std::thread server_ IDS_GUARDED_BY(control_mutex_);
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stopping_{false};
};

}  // namespace ids::telemetry
