#include "telemetry/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace ids::telemetry {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) {
    return false;
  }
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

/// Escapes a label value for the exposition format: backslash, quote, and
/// newline are the only characters Prometheus requires escaping.
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders `{k1="v1",k2="v2"}` (empty string for no labels). `extra` lets
/// histogram exposition append the `le` label to an existing series.
std::string render_labels(const LabelSet& labels, const std::string& extra_key,
                          const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + escape_label_value(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_json_labels(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + escape_json(k) + "\":\"" + escape_json(v) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(bounds.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    IDS_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly ascending";
  }
}

void Histogram::observe(double x) {
  IDS_DCHECK(!std::isnan(x));
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double histogram_quantile(std::span<const double> bounds,
                          std::span<const std::uint64_t> bucket_counts,
                          double q) {
  IDS_CHECK(bucket_counts.size() == bounds.size() + 1)
      << "bucket_counts must carry one slot per bound plus +Inf";
  std::uint64_t total = 0;
  for (std::uint64_t c : bucket_counts) total += c;
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  // Continuous rank of the target observation. q = 0 resolves to the
  // lower edge of the first non-empty bucket, q = 1 to the upper edge of
  // the last.
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    const double in_bucket = static_cast<double>(bucket_counts[i]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= target) {
      if (i == bounds.size()) break;  // +Inf bucket: clamp below
      const double upper = bounds[i];
      const double lower = i == 0 ? std::min(0.0, upper) : bounds[i - 1];
      double frac = (target - cumulative) / in_bucket;
      if (frac < 0.0) frac = 0.0;
      return lower + (upper - lower) * frac;
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? std::numeric_limits<double>::quiet_NaN()
                        : bounds.back();
}

double Histogram::quantile(double q) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  return histogram_quantile(bounds_, counts, q);
}

std::span<const double> latency_seconds_buckets() {
  static const double kBounds[] = {1e-6,  2.5e-6, 5e-6,  1e-5,  2.5e-5, 5e-5,
                                   1e-4,  2.5e-4, 5e-4,  1e-3,  2.5e-3, 5e-3,
                                   1e-2,  2.5e-2, 5e-2,  1e-1,  2.5e-1, 5e-1,
                                   1.0,   2.5,    5.0,   10.0,  25.0,   50.0,
                                   100.0};
  return kBounds;
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: instrument pointers cached by long-lived singletons
  // (ThreadPool::global()) must outlive every static destructor.
  static MetricsRegistry* const kGlobal = new MetricsRegistry();
  return *kGlobal;
}

MetricsRegistry::Entry* MetricsRegistry::find_or_create(
    std::string_view name, LabelSet labels, Kind kind,
    std::span<const double> bounds) {
  IDS_CHECK(valid_metric_name(name)) << "bad metric name: " << name;
  std::sort(labels.begin(), labels.end());
  std::string key(name);
  for (const auto& [k, v] : labels) {
    IDS_CHECK(valid_metric_name(k)) << "bad label name: " << k;
    key += '|';
    key += k;
    key += '=';
    key += v;
  }
  Shard& shard = shards_[std::hash<std::string>{}(key) % kNumShards];
  MutexLock lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    Entry entry;
    entry.name = std::string(name);
    entry.labels = std::move(labels);
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>(bounds);
        break;
    }
    it = shard.entries.emplace(std::move(key), std::move(entry)).first;
  } else {
    IDS_CHECK(it->second.kind == kind)
        << "metric " << name << " re-registered as a different kind";
    if (kind == Kind::kHistogram) {
      const auto existing = it->second.histogram->bounds();
      IDS_CHECK(existing.size() == bounds.size() &&
                std::equal(existing.begin(), existing.end(), bounds.begin()))
          << "histogram " << name << " re-registered with different bounds";
    }
  }
  return &it->second;
}

Counter* MetricsRegistry::counter(std::string_view name, LabelSet labels) {
  return find_or_create(name, std::move(labels), Kind::kCounter, {})
      ->counter.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name, LabelSet labels) {
  return find_or_create(name, std::move(labels), Kind::kGauge, {})
      ->gauge.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds,
                                      LabelSet labels) {
  return find_or_create(name, std::move(labels), Kind::kHistogram, bounds)
      ->histogram.get();
}

struct MetricsRegistry::Sample {
  std::string name;
  LabelSet labels;
  std::string label_str;  // sort tiebreak within a family
  Kind kind;
  std::uint64_t counter_value = 0;
  double gauge_value = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;  // non-cumulative
  std::uint64_t hist_count = 0;
  double hist_sum = 0.0;
};

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot_sorted() const {
  std::vector<Sample> out;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const auto& [key, entry] : shard.entries) {
      Sample s;
      s.name = entry.name;
      s.labels = entry.labels;
      s.label_str = render_labels(entry.labels, "", "");
      s.kind = entry.kind;
      switch (entry.kind) {
        case Kind::kCounter:
          s.counter_value = entry.counter->value();
          break;
        case Kind::kGauge:
          s.gauge_value = entry.gauge->value();
          break;
        case Kind::kHistogram: {
          const auto b = entry.histogram->bounds();
          s.bounds.assign(b.begin(), b.end());
          s.bucket_counts = entry.histogram->bucket_counts();
          s.hist_count = entry.histogram->count();
          s.hist_sum = entry.histogram->sum();
          break;
        }
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(), [](const Sample& a, const Sample& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.label_str < b.label_str;
  });
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  std::ostringstream os;
  std::string prev_name;
  for (const Sample& s : snapshot_sorted()) {
    if (s.name != prev_name) {
      const char* type = s.kind == Kind::kCounter   ? "counter"
                         : s.kind == Kind::kGauge   ? "gauge"
                                                    : "histogram";
      os << "# TYPE " << s.name << " " << type << "\n";
      prev_name = s.name;
    }
    switch (s.kind) {
      case Kind::kCounter:
        os << s.name << s.label_str << " " << s.counter_value << "\n";
        break;
      case Kind::kGauge:
        os << s.name << s.label_str << " " << format_double(s.gauge_value)
           << "\n";
        break;
      case Kind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
          cumulative += s.bucket_counts[i];
          const std::string le =
              i < s.bounds.size() ? format_double(s.bounds[i]) : "+Inf";
          os << s.name << "_bucket" << render_labels(s.labels, "le", le) << " "
             << cumulative << "\n";
        }
        os << s.name << "_sum" << s.label_str << " " << format_double(s.hist_sum)
           << "\n";
        os << s.name << "_count" << s.label_str << " " << s.hist_count << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsRegistry::to_json() const {
  const std::vector<Sample> samples = snapshot_sorted();
  std::ostringstream os;
  auto emit_kind = [&](Kind kind, const char* array_name) {
    os << "\"" << array_name << "\":[";
    bool first = true;
    for (const Sample& s : samples) {
      if (s.kind != kind) continue;
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << escape_json(s.name)
         << "\",\"labels\":" << render_json_labels(s.labels);
      switch (kind) {
        case Kind::kCounter:
          os << ",\"value\":" << s.counter_value;
          break;
        case Kind::kGauge:
          os << ",\"value\":" << format_double(s.gauge_value);
          break;
        case Kind::kHistogram: {
          os << ",\"buckets\":[";
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
            cumulative += s.bucket_counts[i];
            if (i) os << ",";
            os << "{\"le\":\""
               << (i < s.bounds.size() ? format_double(s.bounds[i]) : "+Inf")
               << "\",\"count\":" << cumulative << "}";
          }
          os << "],\"sum\":" << format_double(s.hist_sum)
             << ",\"count\":" << s.hist_count;
          // Quantile convenience for scrapers (/statusz, dashboards).
          // Derived from this snapshot's buckets so the three agree with
          // each other; omitted while the histogram is empty or boundless
          // (the estimate would be NaN, which is not valid JSON).
          const double p50 =
              histogram_quantile(s.bounds, s.bucket_counts, 0.50);
          if (!std::isnan(p50)) {
            os << ",\"p50\":" << format_double(p50) << ",\"p95\":"
               << format_double(histogram_quantile(s.bounds, s.bucket_counts,
                                                   0.95))
               << ",\"p99\":"
               << format_double(histogram_quantile(s.bounds, s.bucket_counts,
                                                   0.99));
          }
          break;
        }
      }
      os << "}";
    }
    os << "]";
  };
  os << "{";
  emit_kind(Kind::kCounter, "counters");
  os << ",";
  emit_kind(Kind::kGauge, "gauges");
  os << ",";
  emit_kind(Kind::kHistogram, "histograms");
  os << "}";
  return os.str();
}

}  // namespace ids::telemetry
