#include "telemetry/query_stats.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "telemetry/metrics.h"  // format_double

namespace ids::telemetry {

std::string QueryResourceAccount::to_json() const {
  std::ostringstream os;
  os << "{\"sequence\":" << sequence
     << ",\"modeled_seconds\":" << format_double(modeled_seconds)
     << ",\"wall_seconds\":" << format_double(wall_seconds)
     << ",\"divergence_seconds\":" << format_double(divergence_seconds())
     << ",\"rows_gathered\":" << rows_gathered
     << ",\"rows_partitioned\":" << rows_partitioned
     << ",\"udf_invocations\":" << udf_invocations
     << ",\"peak_solution_bytes\":" << peak_solution_bytes
     << ",\"cache_bytes_written\":" << cache_bytes_written
     << ",\"cache_misses\":" << cache_misses << ",\"tiers\":[";
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    if (i != 0) os << ',';
    os << "{\"tier\":\"" << tiers[i].tier << "\",\"bytes_in\":"
       << tiers[i].bytes_in << ",\"hits\":" << tiers[i].hits << '}';
  }
  os << "],\"stages\":[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i != 0) os << ',';
    os << "{\"stage\":\"" << stages[i].stage << "\",\"modeled_seconds\":"
       << format_double(stages[i].modeled_seconds) << ",\"wall_seconds\":"
       << format_double(stages[i].wall_seconds) << ",\"divergence_seconds\":"
       << format_double(stages[i].divergence_seconds()) << '}';
  }
  os << "]}";
  return os.str();
}

QueryStatsRing::QueryStatsRing(std::size_t capacity) : capacity_(capacity) {
  IDS_CHECK(capacity_ > 0);
}

std::uint64_t QueryStatsRing::push(QueryResourceAccount account) {
  MutexLock lock(mutex_);
  account.sequence = ++total_pushed_;
  const std::uint64_t sequence = account.sequence;
  entries_.push_back(std::move(account));
  if (entries_.size() > capacity_) {
    entries_.erase(entries_.begin());
  }
  return sequence;
}

std::vector<QueryResourceAccount> QueryStatsRing::snapshot() const {
  MutexLock lock(mutex_);
  return entries_;
}

std::uint64_t QueryStatsRing::total_pushed() const {
  MutexLock lock(mutex_);
  return total_pushed_;
}

std::string QueryStatsRing::to_json() const {
  std::vector<QueryResourceAccount> entries;
  std::uint64_t total = 0;
  {
    MutexLock lock(mutex_);
    entries = entries_;
    total = total_pushed_;
  }
  std::ostringstream os;
  os << "{\"total\":" << total << ",\"recent\":[";
  for (std::size_t i = entries.size(); i-- > 0;) {
    if (i + 1 != entries.size()) os << ',';
    os << entries[i].to_json();
  }
  os << "]}";
  return os.str();
}

}  // namespace ids::telemetry
