#pragma once

// Process-wide metrics registry: the single sink every subsystem reports
// into (ISSUE 4 tentpole).
//
// Three instrument kinds, modeled on the Prometheus data model:
//
//   Counter   — monotonically increasing uint64 (events, bytes).
//   Gauge     — settable double (queue depth, resident entries).
//   Histogram — fixed ascending bucket bounds with Prometheus "le"
//               semantics: observe(x) lands in the first bucket whose
//               upper bound is >= x, or the implicit +Inf overflow
//               bucket. Exposition emits *cumulative* bucket counts.
//
// Instruments are identified by (name, label set). Names follow the
// repo convention `ids_<subsystem>_<name>[_unit][_total]`, e.g.
// `ids_cache_hits_total{cache="cache0",tier="local_dram"}`. Lookup
// returns a stable pointer that stays valid for the registry's lifetime,
// so hot paths resolve an instrument once and then touch only atomics.
//
// The registry itself is lock-sharded like udf::UdfProfiler: lookups
// hash the fully-qualified key onto one of 16 shards, each guarded by
// its own ids::Mutex, so concurrent registration from worker ranks does
// not serialize. Reads on the hot path (inc/observe/set) are lock-free.
//
// Exporters:
//   to_prometheus() — text exposition format (# TYPE lines, _bucket/
//                     _sum/_count for histograms), deterministic order.
//   to_json()       — machine-readable snapshot for tools and tests.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace ids::telemetry {

/// Key/value labels attached to an instrument. Canonicalized (sorted by
/// key) on registration, so `{{"a","1"},{"b","2"}}` and the reverse order
/// name the same instrument.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count. All operations are lock-free.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, bytes resident). Lock-free.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency/size distribution. Bounds are upper edges in
/// ascending order; an implicit +Inf bucket catches the overflow. Bucket
/// membership uses Prometheus' inclusive-upper-bound rule: x lands in the
/// first bucket with bound >= x.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double x);

  /// Per-bucket (non-cumulative) counts, one per bound plus the +Inf slot.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Quantile estimate (q in [0,1], clamped) with Prometheus
  /// histogram_quantile semantics: find the bucket holding the q-th
  /// observation and interpolate linearly within it. See
  /// histogram_quantile() for the edge cases.
  double quantile(double q) const;

  std::span<const double> bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Quantile estimate from a histogram snapshot: `bucket_counts` are the
/// per-bucket (non-cumulative) counts, one per bound plus the trailing
/// +Inf slot. Linear interpolation within the owning bucket, with the
/// first bucket's lower edge taken as 0 (or its own upper edge when that
/// is negative), matching Prometheus' histogram_quantile. Observations
/// landing exactly on a bucket edge report that edge exactly. Returns NaN
/// for an empty histogram; a quantile inside the +Inf overflow bucket
/// clamps to the largest finite bound (the best available estimate).
double histogram_quantile(std::span<const double> bounds,
                          std::span<const std::uint64_t> bucket_counts,
                          double q);

/// Default bucket edges for modeled/wall latencies in seconds: 1us .. 100s
/// in decade steps with 1-2.5-5 subdivision — wide enough for both cache
/// hits (~us) and docking runs (~tens of seconds).
std::span<const double> latency_seconds_buckets();

/// Lock-sharded instrument registry. One `global()` instance serves the
/// whole process; tests construct private registries for goldens.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry. Never destroyed (function-local static),
  /// so instrument pointers cached in long-lived objects stay valid.
  static MetricsRegistry& global();

  /// Find-or-create. The returned pointer is stable for the registry's
  /// lifetime. Re-registering an existing (name, labels) pair with a
  /// different instrument kind (or different histogram bounds) aborts via
  /// IDS_CHECK — one name, one meaning.
  Counter* counter(std::string_view name, LabelSet labels = {});
  Gauge* gauge(std::string_view name, LabelSet labels = {});
  Histogram* histogram(std::string_view name, std::span<const double> bounds,
                       LabelSet labels = {});

  /// Prometheus text exposition, families sorted by name, series sorted by
  /// label string within a family.
  std::string to_prometheus() const;

  /// JSON snapshot: {"counters":[...],"gauges":[...],"histograms":[...]}.
  std::string to_json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    LabelSet labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Shard {
    mutable Mutex mutex;
    std::map<std::string, Entry> entries IDS_GUARDED_BY(mutex);
  };

  Entry* find_or_create(std::string_view name, LabelSet labels, Kind kind,
                        std::span<const double> bounds);

  /// Stable flattened snapshot used by both exporters.
  struct Sample;
  std::vector<Sample> snapshot_sorted() const;

  static constexpr std::size_t kNumShards = 16;
  std::array<Shard, kNumShards> shards_;
};

/// Renders `v` with the shortest decimal digits that round-trip to the
/// same double — deterministic and golden-test friendly. Exposed for the
/// trace exporter and tests.
std::string format_double(double v);

}  // namespace ids::telemetry
