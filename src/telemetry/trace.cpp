#include "telemetry/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/check.h"
#include "common/stats.h"
#include "telemetry/metrics.h"

namespace ids::telemetry {

namespace {

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microseconds with nanosecond resolution kept as three decimals, so the
/// trace timeline is exact for integer-nanosecond modeled times.
std::string micros_str(sim::Nanos ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

std::string spans_to_chrome_json(const std::vector<Span>& spans,
                                 std::uint64_t dropped) {
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  // Metadata events: process name + one named thread per timeline seen.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"ids-engine (modeled time)\"}}";
  std::vector<int> ranks;
  bool engine_timeline = false;
  for (const Span& s : spans) {
    if (s.rank < 0) {
      engine_timeline = true;
    } else if (std::find(ranks.begin(), ranks.end(), s.rank) == ranks.end()) {
      ranks.push_back(s.rank);
    }
  }
  std::sort(ranks.begin(), ranks.end());
  if (engine_timeline) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
          "\"args\":{\"name\":\"engine\"}}";
  }
  for (int r : ranks) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << (r + 1) << ",\"args\":{\"name\":\"rank " << r << "\"}}";
  }
  for (const Span& s : spans) {
    const sim::Nanos end = std::max(s.virt_end, s.virt_start);
    os << ",\n{\"name\":\"" << escape_json(s.name) << "\",\"cat\":\""
       << escape_json(s.category) << "\",\"ph\":\"X\",\"ts\":"
       << micros_str(s.virt_start) << ",\"dur\":"
       << micros_str(end - s.virt_start) << ",\"pid\":0,\"tid\":"
       << (s.rank + 1) << ",\"args\":{\"span_id\":" << s.id
       << ",\"parent_id\":" << s.parent << ",\"modeled_ns\":"
       << (end - s.virt_start) << ",\"wall_ns\":"
       << (s.wall_end_ns >= s.wall_start_ns ? s.wall_end_ns - s.wall_start_ns
                                            : 0);
    for (const auto& [k, v] : s.attrs) {
      os << ",\"" << escape_json(k) << "\":\"" << escape_json(v) << "\"";
    }
    os << "}}";
  }
  os << "\n],\n\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_spans\":"
     << dropped << "}}\n";
  return os.str();
}

std::string spans_to_text_report(const std::vector<Span>& spans,
                                 std::uint64_t dropped) {
  // Children lists in recording order; parent id < child id always holds.
  // A tail snapshot (TraceRing entry) may carry ids offset from its
  // indices, so parents are resolved relative to the first span's id.
  const SpanId base = spans.empty() ? 0 : spans.front().id - 1;
  std::vector<std::vector<std::size_t>> children(spans.size() + 1);
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanId p = spans[i].parent;
    if (p <= base || p > base + spans.size()) {
      roots.push_back(i);
    } else {
      children[p - base].push_back(i);
    }
  }
  std::ostringstream os;
  os << "trace: " << spans.size() << " spans";
  if (dropped > 0) os << " (" << dropped << " dropped)";
  os << "\n";
  std::map<std::string, RunningStats> by_category;
  // Explicit stack instead of recursion: traces can be 4+ levels deep but
  // also 64k spans wide.
  std::vector<std::pair<std::size_t, int>> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    const auto [i, depth] = stack.back();
    stack.pop_back();
    const Span& s = spans[i];
    by_category[s.category].add(sim::to_seconds(s.virt_duration()));
    std::string label(static_cast<std::size_t>(depth) * 2, ' ');
    label += s.name;
    if (s.rank >= 0) label += " [rank " + std::to_string(s.rank) + "]";
    char line[160];
    std::snprintf(line, sizeof(line), "%-48s modeled %12.6fs  wall %10.3fms",
                  label.c_str(), sim::to_seconds(s.virt_duration()),
                  static_cast<double>(s.wall_end_ns >= s.wall_start_ns
                                          ? s.wall_end_ns - s.wall_start_ns
                                          : 0) /
                      1e6);
    os << line;
    if (!s.attrs.empty()) {
      os << "  [";
      for (std::size_t a = 0; a < s.attrs.size(); ++a) {
        if (a) os << " ";
        os << s.attrs[a].first << "=" << s.attrs[a].second;
      }
      os << "]";
    }
    os << "\n";
    const auto& kids = children[s.id - base];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  os << "by category (modeled seconds):\n";
  for (const auto& [category, stats] : by_category) {
    char line[200];
    std::snprintf(line, sizeof(line), "  %-10s %s\n", category.c_str(),
                  stats.to_string().c_str());
    os << line;
  }
  return os.str();
}

Tracer::Tracer(std::size_t max_spans, MetricsRegistry* metrics)
    : max_spans_(max_spans),
      dropped_counter_((metrics != nullptr ? *metrics
                                           : MetricsRegistry::global())
                           .counter("ids_trace_dropped_spans_total")) {}

std::uint64_t Tracer::wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Span* Tracer::find_locked(SpanId id) {
  if (id == kNoSpan || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

SpanId Tracer::begin_span(std::string_view name, std::string_view category,
                          SpanId parent, int rank, sim::Nanos virt_now) {
  const std::uint64_t wall = wall_now_ns();
  MutexLock lock(mutex_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    dropped_counter_->inc();
    return kNoSpan;
  }
  Span span;
  span.name = std::string(name);
  span.category = std::string(category);
  span.id = static_cast<SpanId>(spans_.size() + 1);
  span.parent = parent;
  span.rank = rank;
  span.virt_start = virt_now;
  span.virt_end = virt_now;
  span.wall_start_ns = wall;
  span.wall_end_ns = wall;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::end_span(SpanId id, sim::Nanos virt_now) {
  const std::uint64_t wall = wall_now_ns();
  MutexLock lock(mutex_);
  Span* span = find_locked(id);
  if (span == nullptr) return;
  span->virt_end = virt_now;
  span->wall_end_ns = wall;
}

SpanId Tracer::record_span(std::string_view name, std::string_view category,
                           SpanId parent, int rank, sim::Nanos virt_start,
                           sim::Nanos virt_end, std::uint64_t wall_start_ns,
                           std::uint64_t wall_end_ns) {
  MutexLock lock(mutex_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    dropped_counter_->inc();
    return kNoSpan;
  }
  Span span;
  span.name = std::string(name);
  span.category = std::string(category);
  span.id = static_cast<SpanId>(spans_.size() + 1);
  span.parent = parent;
  span.rank = rank;
  span.virt_start = virt_start;
  span.virt_end = virt_end;
  span.wall_start_ns = wall_start_ns;
  span.wall_end_ns = wall_end_ns;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::add_attr(SpanId id, std::string_view key, std::string_view value) {
  MutexLock lock(mutex_);
  Span* span = find_locked(id);
  if (span == nullptr) return;
  span->attrs.emplace_back(std::string(key), std::string(value));
}

void Tracer::add_attr(SpanId id, std::string_view key, std::uint64_t value) {
  add_attr(id, key, std::string_view(std::to_string(value)));
}

void Tracer::add_attr(SpanId id, std::string_view key, double value) {
  add_attr(id, key, std::string_view(format_double(value)));
}

std::size_t Tracer::size() const {
  MutexLock lock(mutex_);
  return spans_.size();
}

std::uint64_t Tracer::dropped() const {
  MutexLock lock(mutex_);
  return dropped_;
}

std::vector<Span> Tracer::snapshot() const {
  MutexLock lock(mutex_);
  return spans_;
}

std::vector<Span> Tracer::snapshot_tail(std::size_t first) const {
  MutexLock lock(mutex_);
  if (first >= spans_.size()) return {};
  return std::vector<Span>(spans_.begin() + static_cast<std::ptrdiff_t>(first),
                           spans_.end());
}

void Tracer::clear() {
  MutexLock lock(mutex_);
  spans_.clear();
  dropped_ = 0;
}

std::string Tracer::to_chrome_json() const {
  std::vector<Span> spans;
  std::uint64_t dropped_count;
  {
    MutexLock lock(mutex_);
    spans = spans_;
    dropped_count = dropped_;
  }
  return spans_to_chrome_json(spans, dropped_count);
}

std::string Tracer::to_text_report() const {
  std::vector<Span> spans;
  std::uint64_t dropped_count;
  {
    MutexLock lock(mutex_);
    spans = spans_;
    dropped_count = dropped_;
  }
  return spans_to_text_report(spans, dropped_count);
}

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity) {
  IDS_CHECK(capacity_ > 0) << "TraceRing capacity must be positive";
}

void TraceRing::push(std::vector<Span> spans, std::uint64_t dropped) {
  MutexLock lock(mutex_);
  Entry entry;
  entry.sequence = ++total_pushed_;
  entry.spans = std::move(spans);
  entry.dropped = dropped;
  entries_.push_back(std::move(entry));
  if (entries_.size() > capacity_) {
    entries_.erase(entries_.begin(),
                   entries_.begin() +
                       static_cast<std::ptrdiff_t>(entries_.size() - capacity_));
  }
}

std::vector<TraceRing::Entry> TraceRing::snapshot() const {
  MutexLock lock(mutex_);
  return entries_;
}

std::uint64_t TraceRing::total_pushed() const {
  MutexLock lock(mutex_);
  return total_pushed_;
}

std::string TraceRing::to_text_report() const {
  const std::vector<Entry> entries = snapshot();
  std::ostringstream os;
  std::uint64_t total;
  {
    MutexLock lock(mutex_);
    total = total_pushed_;
  }
  os << "tracez: " << entries.size() << " of " << total
     << " completed queries retained (capacity " << capacity_ << ")\n";
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    os << "\n=== trace #" << it->sequence << " ===\n"
       << spans_to_text_report(it->spans, it->dropped);
  }
  return os.str();
}

std::string TraceRing::to_chrome_json() const {
  MutexLock lock(mutex_);
  if (entries_.empty()) return spans_to_chrome_json({}, 0);
  const Entry& last = entries_.back();
  return spans_to_chrome_json(last.spans, last.dropped);
}

}  // namespace ids::telemetry
