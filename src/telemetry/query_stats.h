#pragma once

// Per-query resource accounting (ISSUE 9 tentpole).
//
// A QueryResourceAccount is assembled by the engine over one execute()
// call and answers "what did this query cost, and where": bytes pulled
// per cache tier, rows moved by the exchange layer, UDF model
// executions, the high-water mark of SolutionTable bytes, and — per
// stage — how far the modeled (virtual-clock) time diverged from host
// wall time. The finished account travels three ways:
//
//   * QueryResult::account       — programmatic access for callers;
//   * the trace root span attrs  — so /tracez shows cost next to time;
//   * QueryStatsRing             — bounded ring feeding /statusz.
//
// Everything here is plain data plus JSON rendering; the engine owns
// all mutation (single-threaded at barrier points), so the account
// itself needs no locking. Only the ring is thread-safe.

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace ids::telemetry {

/// Modeled-vs-wall time for one engine stage.
struct StageAccount {
  std::string stage;          // "scan", "filter", "invoke", ...
  double modeled_seconds = 0.0;
  double wall_seconds = 0.0;

  /// Positive when the harness spent more wall time than the model
  /// charged (overhead), negative when the model charges more than the
  /// host actually needed (simulated I/O, modeled FLOPs).
  double divergence_seconds() const { return wall_seconds - modeled_seconds; }
};

/// Bytes and hits served by one cache tier during the query.
struct TierBytes {
  std::string tier;  // "local_dram", "local_ssd", "remote_dram", ...
  std::uint64_t bytes_in = 0;  // payload bytes read from this tier
  std::uint64_t hits = 0;
};

/// Everything one query consumed. See file comment for the data flow.
struct QueryResourceAccount {
  std::uint64_t sequence = 0;  // 1-based completion index, ring-assigned

  std::vector<TierBytes> tiers;        // only tiers that served bytes
  std::uint64_t cache_bytes_written = 0;
  std::uint64_t cache_misses = 0;

  std::uint64_t rows_gathered = 0;     // rows merged at gather
  std::uint64_t rows_partitioned = 0;  // rows crossing ranks in exchanges
  std::uint64_t udf_invocations = 0;   // INVOKE model executions
  std::uint64_t peak_solution_bytes = 0;

  std::vector<StageAccount> stages;    // execution order
  double modeled_seconds = 0.0;        // whole-query modeled time
  double wall_seconds = 0.0;           // whole-query host time

  double divergence_seconds() const { return wall_seconds - modeled_seconds; }

  /// Deterministic single-object JSON (format_double doubles), e.g.
  /// {"sequence":3,"modeled_seconds":...,"tiers":[...],"stages":[...]}.
  std::string to_json() const;
};

/// Bounded ring of the most recent completed query accounts, feeding
/// /statusz. push() assigns the account's 1-based completion sequence.
/// Thread-safe: queries push while HTTP scrapes snapshot.
class QueryStatsRing {
 public:
  explicit QueryStatsRing(std::size_t capacity = 8);
  QueryStatsRing(const QueryStatsRing&) = delete;
  QueryStatsRing& operator=(const QueryStatsRing&) = delete;

  /// Stores the account (stamping its `sequence`) and returns that
  /// sequence number.
  std::uint64_t push(QueryResourceAccount account) IDS_EXCLUDES(mutex_);

  /// Retained accounts, oldest first.
  std::vector<QueryResourceAccount> snapshot() const IDS_EXCLUDES(mutex_);
  /// Accounts ever pushed (>= retained count).
  std::uint64_t total_pushed() const IDS_EXCLUDES(mutex_);
  std::size_t capacity() const { return capacity_; }

  /// {"total":N,"recent":[...]} with accounts newest first.
  std::string to_json() const IDS_EXCLUDES(mutex_);

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::vector<QueryResourceAccount> entries_ IDS_GUARDED_BY(mutex_);
  std::uint64_t total_pushed_ IDS_GUARDED_BY(mutex_) = 0;
};

}  // namespace ids::telemetry
