#include "telemetry/profiler.h"

#include <algorithm>
#include <array>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "common/check.h"

namespace ids::telemetry {

// Per-thread shadow stack. The owning thread pushes/pops under `mutex`;
// the sampler copies the frame array out under the same mutex, so a
// sample never observes a half-written stack. `depth` keeps counting
// past kMaxProfileDepth (frames beyond the cap are not stored) so pops
// stay balanced no matter how deep the code recursed.
struct ProfileThreadStack {
  mutable Mutex mutex;
  std::array<const char*, kMaxProfileDepth> frames IDS_GUARDED_BY(mutex) = {};
  std::size_t depth IDS_GUARDED_BY(mutex) = 0;
};

namespace {

// One slot per thread binding it to its shadow stack in the global
// profiler. Never reset: the stack object lives as long as the (leaked)
// profiler singleton. lint:allow-global: thread-local registration slot.
thread_local ProfileThreadStack* t_profile_stack = nullptr;

}  // namespace

Profiler& Profiler::global() {
  // Leaked on purpose: worker threads may still pop frames during static
  // destruction. lint:allow-global: process-wide singleton by design.
  static Profiler* const instance = new Profiler();
  return *instance;
}

ProfileThreadStack* Profiler::register_thread() {
  auto stack = std::make_unique<ProfileThreadStack>();
  ProfileThreadStack* raw = stack.get();
  MutexLock lock(data_mutex_);
  stacks_.push_back(std::move(stack));
  return raw;
}

void Profiler::push_frame(const char* name) {
  ProfileThreadStack* stack = t_profile_stack;
  if (stack == nullptr) {
    stack = register_thread();
    t_profile_stack = stack;
  }
  MutexLock lock(stack->mutex);
  if (stack->depth < kMaxProfileDepth) stack->frames[stack->depth] = name;
  ++stack->depth;
}

void Profiler::pop_frame() {
  ProfileThreadStack* stack = t_profile_stack;
  IDS_CHECK(stack != nullptr);  // pop without a matching push
  MutexLock lock(stack->mutex);
  IDS_CHECK(stack->depth > 0);
  --stack->depth;
}

void Profiler::sample_once() {
  MutexLock lock(data_mutex_);
  ++ticks_;
  std::string path;
  std::array<const char*, kMaxProfileDepth> frames;
  for (const auto& stack : stacks_) {
    std::size_t depth;
    bool truncated;
    {
      MutexLock stack_lock(stack->mutex);
      depth = std::min(stack->depth, kMaxProfileDepth);
      truncated = stack->depth > kMaxProfileDepth;
      std::copy_n(stack->frames.begin(), depth, frames.begin());
    }
    if (depth == 0) continue;  // idle thread: contributes no sample
    path.clear();
    for (std::size_t i = 0; i < depth; ++i) {
      if (i != 0) path += ';';
      path += frames[i];
    }
    if (truncated) path += ";[truncated]";
    ++folded_[path];
    ++samples_;
  }
}

void Profiler::clear() {
  MutexLock lock(data_mutex_);
  folded_.clear();
  samples_ = 0;
  ticks_ = 0;
}

std::uint64_t Profiler::samples_total() const {
  MutexLock lock(data_mutex_);
  return samples_;
}

std::uint64_t Profiler::ticks_total() const {
  MutexLock lock(data_mutex_);
  return ticks_;
}

void Profiler::start(double hertz) {
  IDS_CHECK(hertz > 0.0);
  set_enabled(true);
  MutexLock lock(control_mutex_);
  if (sampler_.joinable()) return;  // already running; keep original rate
  {
    MutexLock tick_lock(tick_mutex_);
    stop_requested_ = false;
  }
  const auto period =
      std::chrono::nanoseconds(static_cast<std::int64_t>(1e9 / hertz));
  sampler_ = std::thread([this, period] { sampler_loop(period); });
}

void Profiler::stop() {
  set_enabled(false);
  std::thread joinable;
  {
    MutexLock lock(control_mutex_);
    if (!sampler_.joinable()) return;  // already stopped
    {
      MutexLock tick_lock(tick_mutex_);
      stop_requested_ = true;
    }
    tick_cv_.notify_all();
    joinable = std::move(sampler_);
  }
  joinable.join();  // outside the locks: never block while holding one
}

bool Profiler::running() const {
  MutexLock lock(control_mutex_);
  return sampler_.joinable();
}

void Profiler::sampler_loop(std::chrono::nanoseconds period) {
  for (;;) {
    {
      MutexLock lock(tick_mutex_);
      const bool stopping = tick_cv_.wait_for(
          tick_mutex_, period,
          [this]() IDS_REQUIRES(tick_mutex_) { return stop_requested_; });
      if (stopping) return;
    }
    sample_once();
  }
}

std::string Profiler::to_folded() const {
  MutexLock lock(data_mutex_);
  std::string out;
  for (const auto& [path, count] : folded_) {
    out += path;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string Profiler::to_json_top(std::size_t top_n) const {
  struct FrameCounts {
    std::uint64_t self = 0;
    std::uint64_t total = 0;
  };
  std::map<std::string, FrameCounts> frames;
  std::uint64_t samples = 0;
  std::uint64_t ticks = 0;
  {
    MutexLock lock(data_mutex_);
    samples = samples_;
    ticks = ticks_;
    for (const auto& [path, count] : folded_) {
      // `total` counts a frame once per sample even if it repeats in the
      // path (recursive scopes); `self` goes to the leaf frame only.
      std::size_t begin = 0;
      std::string_view leaf;
      std::vector<std::string_view> seen;
      const std::string_view p(path);
      while (begin <= p.size()) {
        const std::size_t end = std::min(p.find(';', begin), p.size());
        const std::string_view frame = p.substr(begin, end - begin);
        leaf = frame;
        if (std::find(seen.begin(), seen.end(), frame) == seen.end()) {
          seen.push_back(frame);
          frames[std::string(frame)].total += count;
        }
        begin = end + 1;
      }
      frames[std::string(leaf)].self += count;
    }
  }

  std::vector<std::pair<std::string, FrameCounts>> rows(frames.begin(),
                                                        frames.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self != b.second.self) return a.second.self > b.second.self;
    return a.first < b.first;
  });
  if (rows.size() > top_n) rows.resize(top_n);

  std::ostringstream os;
  os << "{\"samples_total\":" << samples << ",\"ticks_total\":" << ticks
     << ",\"top\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) os << ',';
    os << "{\"frame\":\"" << rows[i].first << "\",\"self\":"
       << rows[i].second.self << ",\"total\":" << rows[i].second.total << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace ids::telemetry
