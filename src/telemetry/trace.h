#pragma once

// Query tracer: a span tree per IdsEngine::execute (ISSUE 4 tentpole).
//
// Spans form a tree — query → stage → per-rank operator → per-call
// (UDF exec, cache get/put) — and every span carries TWO time ranges:
//
//   virt_start/virt_end — modeled virtual-clock time (sim::Nanos) on the
//                         timeline the span ran on. This is the time the
//                         simulation reports to the user, so the Chrome
//                         trace is laid out on the modeled clock.
//   wall_start/wall_end — host wall-clock nanoseconds, recorded so the
//                         overhead of the harness itself stays visible.
//
// Timelines map to Chrome trace "threads": tid 0 is the engine's barrier
// timeline (query + stage spans), tid r+1 is rank r's virtual clock.
//
// Exporters:
//   to_chrome_json()  — Chrome trace_event JSON ("X" complete events,
//                       ts/dur in microseconds of modeled time), loadable
//                       in chrome://tracing and Perfetto. args carry the
//                       exact integer modeled_ns plus all span attributes.
//   to_text_report()  — EXPLAIN ANALYZE-style indented tree with modeled
//                       and wall durations, plus a per-category summary
//                       built on common/stats.h RunningStats.
//
// Thread safety: one Tracer may be shared by all ranks of a query; every
// public method locks the tracer mutex. Span recording is bounded by
// `max_spans` — past the cap new spans are dropped (counted, reported in
// both exports) rather than growing without bound on million-row queries.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"
#include "sim/time.h"

namespace ids::telemetry {

/// 1-based span handle; 0 means "no span" (parentless, or tracing off).
using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = 0;

struct Span {
  std::string name;
  std::string category;  // "query", "stage", "rank", "udf", "cache", ...
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  int rank = -1;  // -1 = engine barrier timeline, >= 0 = that rank's clock
  sim::Nanos virt_start = 0;
  sim::Nanos virt_end = 0;
  std::uint64_t wall_start_ns = 0;
  std::uint64_t wall_end_ns = 0;
  std::vector<std::pair<std::string, std::string>> attrs;

  sim::Nanos virt_duration() const { return virt_end - virt_start; }
};

class Tracer {
 public:
  explicit Tracer(std::size_t max_spans = 1u << 16) : max_spans_(max_spans) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Host wall clock in nanoseconds (steady). Exposed so callers can
  /// timestamp retroactive spans consistently with begin/end pairs.
  static std::uint64_t wall_now_ns();

  /// Opens a span at modeled time `virt_now`; wall start is sampled here.
  /// Returns kNoSpan when the span cap is hit (end_span/add_attr on
  /// kNoSpan are no-ops, so call sites stay unconditional).
  SpanId begin_span(std::string_view name, std::string_view category,
                    SpanId parent, int rank, sim::Nanos virt_now)
      IDS_EXCLUDES(mutex_);

  void end_span(SpanId id, sim::Nanos virt_now) IDS_EXCLUDES(mutex_);

  /// Records a completed span in one call (both time ranges supplied by
  /// the caller). Used where the span is only known after the fact.
  SpanId record_span(std::string_view name, std::string_view category,
                     SpanId parent, int rank, sim::Nanos virt_start,
                     sim::Nanos virt_end, std::uint64_t wall_start_ns,
                     std::uint64_t wall_end_ns) IDS_EXCLUDES(mutex_);

  void add_attr(SpanId id, std::string_view key, std::string_view value)
      IDS_EXCLUDES(mutex_);
  void add_attr(SpanId id, std::string_view key, std::uint64_t value)
      IDS_EXCLUDES(mutex_);
  void add_attr(SpanId id, std::string_view key, double value)
      IDS_EXCLUDES(mutex_);

  /// Spans recorded so far (completed or still open).
  std::size_t size() const IDS_EXCLUDES(mutex_);
  /// Spans rejected by the max_spans cap.
  std::uint64_t dropped() const IDS_EXCLUDES(mutex_);

  std::vector<Span> snapshot() const IDS_EXCLUDES(mutex_);
  void clear() IDS_EXCLUDES(mutex_);

  std::string to_chrome_json() const IDS_EXCLUDES(mutex_);
  std::string to_text_report() const IDS_EXCLUDES(mutex_);

 private:
  Span* find_locked(SpanId id) IDS_REQUIRES(mutex_);

  const std::size_t max_spans_;
  mutable Mutex mutex_;
  std::vector<Span> spans_ IDS_GUARDED_BY(mutex_);
  std::uint64_t dropped_ IDS_GUARDED_BY(mutex_) = 0;
};

}  // namespace ids::telemetry
