#pragma once

// Query tracer: a span tree per IdsEngine::execute (ISSUE 4 tentpole).
//
// Spans form a tree — query → stage → per-rank operator → per-call
// (UDF exec, cache get/put) — and every span carries TWO time ranges:
//
//   virt_start/virt_end — modeled virtual-clock time (sim::Nanos) on the
//                         timeline the span ran on. This is the time the
//                         simulation reports to the user, so the Chrome
//                         trace is laid out on the modeled clock.
//   wall_start/wall_end — host wall-clock nanoseconds, recorded so the
//                         overhead of the harness itself stays visible.
//
// Timelines map to Chrome trace "threads": tid 0 is the engine's barrier
// timeline (query + stage spans), tid r+1 is rank r's virtual clock.
//
// Exporters:
//   to_chrome_json()  — Chrome trace_event JSON ("X" complete events,
//                       ts/dur in microseconds of modeled time), loadable
//                       in chrome://tracing and Perfetto. args carry the
//                       exact integer modeled_ns plus all span attributes.
//   to_text_report()  — EXPLAIN ANALYZE-style indented tree with modeled
//                       and wall durations, plus a per-category summary
//                       built on common/stats.h RunningStats.
//
// Thread safety: one Tracer may be shared by all ranks of a query; every
// public method locks the tracer mutex. Span recording is bounded by
// `max_spans` — past the cap new spans are dropped (counted, reported in
// both exports) rather than growing without bound on million-row queries.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"
#include "sim/time.h"

namespace ids::telemetry {

class Counter;          // metrics.h
class MetricsRegistry;  // metrics.h

/// 1-based span handle; 0 means "no span" (parentless, or tracing off).
using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = 0;

struct Span {
  std::string name;
  std::string category;  // "query", "stage", "rank", "udf", "cache", ...
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  int rank = -1;  // -1 = engine barrier timeline, >= 0 = that rank's clock
  sim::Nanos virt_start = 0;
  sim::Nanos virt_end = 0;
  std::uint64_t wall_start_ns = 0;
  std::uint64_t wall_end_ns = 0;
  std::vector<std::pair<std::string, std::string>> attrs;

  sim::Nanos virt_duration() const { return virt_end - virt_start; }
};

/// Chrome trace_event JSON for a span list (see Tracer::to_chrome_json).
/// Free function so ring-buffered snapshots (TraceRing, /tracez) render
/// with the exact same layout as a live Tracer.
std::string spans_to_chrome_json(const std::vector<Span>& spans,
                                 std::uint64_t dropped);

/// EXPLAIN ANALYZE-style indented text report for a span list (see
/// Tracer::to_text_report).
std::string spans_to_text_report(const std::vector<Span>& spans,
                                 std::uint64_t dropped);

class Tracer {
 public:
  /// `metrics` receives the ids_trace_dropped_spans_total counter (spans
  /// rejected by the max_spans cap); nullptr = the process-global
  /// registry. Resolved once here, so drops on the hot path are one
  /// lock-free increment.
  explicit Tracer(std::size_t max_spans = 1u << 16,
                  MetricsRegistry* metrics = nullptr);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Host wall clock in nanoseconds (steady). Exposed so callers can
  /// timestamp retroactive spans consistently with begin/end pairs.
  static std::uint64_t wall_now_ns();

  /// Opens a span at modeled time `virt_now`; wall start is sampled here.
  /// Returns kNoSpan when the span cap is hit (end_span/add_attr on
  /// kNoSpan are no-ops, so call sites stay unconditional).
  SpanId begin_span(std::string_view name, std::string_view category,
                    SpanId parent, int rank, sim::Nanos virt_now)
      IDS_EXCLUDES(mutex_);

  void end_span(SpanId id, sim::Nanos virt_now) IDS_EXCLUDES(mutex_);

  /// Records a completed span in one call (both time ranges supplied by
  /// the caller). Used where the span is only known after the fact.
  SpanId record_span(std::string_view name, std::string_view category,
                     SpanId parent, int rank, sim::Nanos virt_start,
                     sim::Nanos virt_end, std::uint64_t wall_start_ns,
                     std::uint64_t wall_end_ns) IDS_EXCLUDES(mutex_);

  void add_attr(SpanId id, std::string_view key, std::string_view value)
      IDS_EXCLUDES(mutex_);
  void add_attr(SpanId id, std::string_view key, std::uint64_t value)
      IDS_EXCLUDES(mutex_);
  void add_attr(SpanId id, std::string_view key, double value)
      IDS_EXCLUDES(mutex_);

  /// Spans recorded so far (completed or still open).
  std::size_t size() const IDS_EXCLUDES(mutex_);
  /// Spans rejected by the max_spans cap.
  std::uint64_t dropped() const IDS_EXCLUDES(mutex_);

  std::vector<Span> snapshot() const IDS_EXCLUDES(mutex_);
  /// Copy of the spans recorded at or after index `first` (0-based
  /// recording order). The engine uses size() before a query and
  /// snapshot_tail() after it to carve one query's tree out of a
  /// tracer shared across queries.
  std::vector<Span> snapshot_tail(std::size_t first) const
      IDS_EXCLUDES(mutex_);
  void clear() IDS_EXCLUDES(mutex_);

  std::string to_chrome_json() const IDS_EXCLUDES(mutex_);
  std::string to_text_report() const IDS_EXCLUDES(mutex_);

 private:
  Span* find_locked(SpanId id) IDS_REQUIRES(mutex_);

  const std::size_t max_spans_;
  Counter* dropped_counter_;  // ids_trace_dropped_spans_total
  mutable Mutex mutex_;
  std::vector<Span> spans_ IDS_GUARDED_BY(mutex_);
  std::uint64_t dropped_ IDS_GUARDED_BY(mutex_) = 0;
};

/// Bounded ring of the most recent completed query span trees, feeding
/// the observability server's /tracez endpoint. The engine pushes one
/// entry per execute() (its query's spans plus the tracer's dropped
/// count); the oldest entry falls out once `capacity` is reached.
/// Thread-safe: queries push while HTTP scrapes snapshot.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 8);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  struct Entry {
    std::uint64_t sequence = 0;  // 1-based completion index
    std::vector<Span> spans;
    std::uint64_t dropped = 0;
  };

  void push(std::vector<Span> spans, std::uint64_t dropped)
      IDS_EXCLUDES(mutex_);

  /// Retained entries, oldest first.
  std::vector<Entry> snapshot() const IDS_EXCLUDES(mutex_);
  /// Entries ever pushed (>= retained count).
  std::uint64_t total_pushed() const IDS_EXCLUDES(mutex_);
  std::size_t capacity() const { return capacity_; }

  /// Text report of every retained trace, newest first, each under a
  /// "trace #<sequence>" header.
  std::string to_text_report() const IDS_EXCLUDES(mutex_);
  /// Chrome JSON of the most recent retained trace (empty trace when the
  /// ring is empty).
  std::string to_chrome_json() const IDS_EXCLUDES(mutex_);

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::vector<Entry> entries_ IDS_GUARDED_BY(mutex_);  // oldest first
  std::uint64_t total_pushed_ IDS_GUARDED_BY(mutex_) = 0;
};

}  // namespace ids::telemetry
