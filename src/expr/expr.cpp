#include "expr/expr.h"

#include "store/feature_store.h"
#include "telemetry/profiler.h"

namespace ids::expr {

// The private default constructor keeps Expr immutable from outside; the
// static factories (which may access it) build an instance locally and
// freeze it behind a shared_ptr<const Expr>.

ExprPtr Expr::Constant(Value v) {
  Expr e;
  e.kind_ = ExprKind::kConst;
  e.value_ = std::move(v);
  return std::make_shared<const Expr>(std::move(e));
}

ExprPtr Expr::Var(std::string name) {
  Expr e;
  e.kind_ = ExprKind::kVar;
  e.name_ = std::move(name);
  return std::make_shared<const Expr>(std::move(e));
}

ExprPtr Expr::Feature(ExprPtr entity, std::string feature) {
  Expr e;
  e.kind_ = ExprKind::kFeature;
  e.name_ = std::move(feature);
  e.children_ = {std::move(entity)};
  return std::make_shared<const Expr>(std::move(e));
}

ExprPtr Expr::Compare(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  Expr e;
  e.kind_ = ExprKind::kCompare;
  e.cmp_ = op;
  e.children_ = {std::move(lhs), std::move(rhs)};
  return std::make_shared<const Expr>(std::move(e));
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  Expr e;
  e.kind_ = ExprKind::kLogical;
  e.logic_ = LogicOp::kAnd;
  e.children_ = {std::move(lhs), std::move(rhs)};
  return std::make_shared<const Expr>(std::move(e));
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  Expr e;
  e.kind_ = ExprKind::kLogical;
  e.logic_ = LogicOp::kOr;
  e.children_ = {std::move(lhs), std::move(rhs)};
  return std::make_shared<const Expr>(std::move(e));
}

ExprPtr Expr::Not(ExprPtr operand) {
  Expr e;
  e.kind_ = ExprKind::kLogical;
  e.logic_ = LogicOp::kNot;
  e.children_ = {std::move(operand)};
  return std::make_shared<const Expr>(std::move(e));
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  Expr e;
  e.kind_ = ExprKind::kArith;
  e.arith_ = op;
  e.children_ = {std::move(lhs), std::move(rhs)};
  return std::make_shared<const Expr>(std::move(e));
}

ExprPtr Expr::Udf(std::string name, std::vector<ExprPtr> args) {
  Expr e;
  e.kind_ = ExprKind::kUdfCall;
  e.name_ = std::move(name);
  e.children_ = std::move(args);
  return std::make_shared<const Expr>(std::move(e));
}

void Expr::collect_udfs(std::vector<std::string>* out) const {
  if (kind_ == ExprKind::kUdfCall) out->push_back(name_);
  for (const auto& c : children_) c->collect_udfs(out);
}

std::string Expr::to_string() const {
  switch (kind_) {
    case ExprKind::kConst:
      return expr::to_string(value_);
    case ExprKind::kVar:
      return "?" + name_;
    case ExprKind::kFeature:
      return children_[0]->to_string() + "." + name_;
    case ExprKind::kCompare: {
      static constexpr const char* ops[] = {"==", "!=", "<", "<=", ">", ">="};
      return "(" + children_[0]->to_string() + " " +
             ops[static_cast<int>(cmp_)] + " " + children_[1]->to_string() + ")";
    }
    case ExprKind::kLogical: {
      if (logic_ == LogicOp::kNot) return "!(" + children_[0]->to_string() + ")";
      const char* op = logic_ == LogicOp::kAnd ? " && " : " || ";
      return "(" + children_[0]->to_string() + op + children_[1]->to_string() +
             ")";
    }
    case ExprKind::kArith: {
      static constexpr const char* ops[] = {"+", "-", "*", "/"};
      return "(" + children_[0]->to_string() + " " +
             ops[static_cast<int>(arith_)] + " " + children_[1]->to_string() +
             ")";
    }
    case ExprKind::kUdfCall: {
      std::string s = name_ + "(";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i) s += ", ";
        s += children_[i]->to_string();
      }
      return s + ")";
    }
  }
  return "?";
}

namespace {

Value eval_var(const Expr& e, EvalContext& ctx) {
  const graph::SolutionTable* t = ctx.row.table;
  if (!t) return null_value();
  if (int i = t->id_var_index(e.name()); i >= 0) {
    return Entity{t->id_at(ctx.row.row, i)};
  }
  if (int i = t->num_var_index(e.name()); i >= 0) {
    return t->num_at(ctx.row.row, i);
  }
  return null_value();
}

Value eval_feature(const Expr& e, EvalContext& ctx) {
  Value ent = eval(*e.children()[0], ctx);
  const Entity* en = std::get_if<Entity>(&ent);
  if (!en || !ctx.udf_ctx.features) return null_value();
  const store::FeatureValue* fv = ctx.udf_ctx.features->get(en->id, e.name());
  if (!fv) return null_value();
  if (const double* d = std::get_if<double>(fv)) return *d;
  if (const std::int64_t* i = std::get_if<std::int64_t>(fv)) return *i;
  return std::get<std::string>(*fv);
}

Value eval_compare(const Expr& e, EvalContext& ctx) {
  Value a = eval(*e.children()[0], ctx);
  Value b = eval(*e.children()[1], ctx);
  if (is_null(a) || is_null(b)) return null_value();
  // Equality on mismatched types is false, not null, except via compare.
  int c = 0;
  if (!compare(a, b, &c)) {
    if (e.cmp_op() == CmpOp::kEq) return false;
    if (e.cmp_op() == CmpOp::kNe) return true;
    return null_value();
  }
  switch (e.cmp_op()) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
  }
  return null_value();
}

Value eval_logical(const Expr& e, EvalContext& ctx) {
  if (e.logic_op() == LogicOp::kNot) {
    Value v = eval(*e.children()[0], ctx);
    if (is_null(v)) return null_value();
    return !truthy(v);
  }
  // Short-circuit evaluation: the right operand of a satisfied AND/OR is
  // never evaluated (and never charged) — this is what makes conjunct
  // ordering matter for cost.
  Value a = eval(*e.children()[0], ctx);
  bool ta = truthy(a);
  if (e.logic_op() == LogicOp::kAnd) {
    if (!ta) return false;
    return truthy(eval(*e.children()[1], ctx));
  }
  if (ta) return true;
  return truthy(eval(*e.children()[1], ctx));
}

Value eval_arith(const Expr& e, EvalContext& ctx) {
  Value a = eval(*e.children()[0], ctx);
  Value b = eval(*e.children()[1], ctx);
  double da = 0.0;
  double db = 0.0;
  if (!as_double(a, &da) || !as_double(b, &db)) return null_value();
  switch (e.arith_op()) {
    case ArithOp::kAdd: return da + db;
    case ArithOp::kSub: return da - db;
    case ArithOp::kMul: return da * db;
    case ArithOp::kDiv: return db == 0.0 ? null_value() : Value(da / db);
  }
  return null_value();
}

Value eval_udf(const Expr& e, EvalContext& ctx) {
  if (!ctx.registry) return null_value();
  const udf::UdfInfo* info = ctx.registry->find(e.name());
  if (!info) return null_value();

  std::vector<Value> args;
  args.reserve(e.children().size());
  for (const auto& c : e.children()) args.push_back(eval(*c, ctx));

  // First touch of a dynamic module on this rank pays the import cost.
  ctx.cost += ctx.registry->charge_module_load(ctx.udf_ctx.rank, *info);

  const udf::UdfResult r = [&] {
    // Attribute execution to the UDF by name; UdfInfo outlives every
    // query, so the pointer stays valid for the profiler.
    telemetry::ProfileScope udf_scope(info->name.c_str());
    return info->fn(ctx.udf_ctx, args);
  }();
  auto scaled = static_cast<sim::Nanos>(
      static_cast<double>(r.modeled_cost) /
      (ctx.speed_factor > 0.0 ? ctx.speed_factor : 1.0));
  ctx.cost += scaled;
  if (ctx.profiler) {
    ctx.profiler->record_exec(ctx.udf_ctx.rank, info->name, scaled);
  }
  return std::move(r.value);
}

}  // namespace

Value eval(const Expr& e, EvalContext& ctx) {
  ctx.cost += kExprNodeCost;
  switch (e.kind()) {
    case ExprKind::kConst: return e.constant();
    case ExprKind::kVar: return eval_var(e, ctx);
    case ExprKind::kFeature: return eval_feature(e, ctx);
    case ExprKind::kCompare: return eval_compare(e, ctx);
    case ExprKind::kLogical: return eval_logical(e, ctx);
    case ExprKind::kArith: return eval_arith(e, ctx);
    case ExprKind::kUdfCall: return eval_udf(e, ctx);
  }
  return null_value();
}

}  // namespace ids::expr
