#include "expr/value.h"

#include <cstdio>

namespace ids::expr {

bool truthy(const Value& v) {
  if (const bool* b = std::get_if<bool>(&v)) return *b;
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) return *i != 0;
  if (const double* d = std::get_if<double>(&v)) return *d != 0.0;
  if (const std::string* s = std::get_if<std::string>(&v)) return !s->empty();
  if (const Entity* e = std::get_if<Entity>(&v)) {
    return e->id != graph::kInvalidTerm;
  }
  return false;
}

bool as_double(const Value& v, double* out) {
  if (const double* d = std::get_if<double>(&v)) {
    *out = *d;
    return true;
  }
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) {
    *out = static_cast<double>(*i);
    return true;
  }
  if (const bool* b = std::get_if<bool>(&v)) {
    *out = *b ? 1.0 : 0.0;
    return true;
  }
  return false;
}

bool compare(const Value& a, const Value& b, int* out) {
  double da = 0.0;
  double db = 0.0;
  if (as_double(a, &da) && as_double(b, &db)) {
    *out = (da < db) ? -1 : (da > db ? 1 : 0);
    return true;
  }
  const std::string* sa = std::get_if<std::string>(&a);
  const std::string* sb = std::get_if<std::string>(&b);
  if (sa && sb) {
    int c = sa->compare(*sb);
    *out = (c < 0) ? -1 : (c > 0 ? 1 : 0);
    return true;
  }
  const Entity* ea = std::get_if<Entity>(&a);
  const Entity* eb = std::get_if<Entity>(&b);
  if (ea && eb) {
    *out = (ea->id < eb->id) ? -1 : (ea->id > eb->id ? 1 : 0);
    return true;
  }
  return false;
}

std::string to_string(const Value& v) {
  if (is_null(v)) return "null";
  if (const bool* b = std::get_if<bool>(&v)) return *b ? "true" : "false";
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) {
    return std::to_string(*i);
  }
  if (const double* d = std::get_if<double>(&v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", *d);
    return buf;
  }
  if (const Entity* e = std::get_if<Entity>(&v)) {
    return "entity:" + std::to_string(e->id);
  }
  return std::get<std::string>(v);
}

}  // namespace ids::expr
