#pragma once

// FILTER expression trees (§2.4.3).
//
// Expressions evaluated as part of operators are represented as trees whose
// leaves are constants, solution-variable references, and feature lookups,
// and whose interior nodes are comparisons, logical connectives, arithmetic,
// and UDF calls. Trees are immutable and shared; the planner reorders
// *references* to subtrees, never mutates them, so a reordered plan can
// never change evaluation semantics of an individual conjunct.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "expr/value.h"
#include "graph/solution.h"
#include "sim/time.h"
#include "udf/profiler.h"
#include "udf/registry.h"

namespace ids::expr {

enum class ExprKind { kConst, kVar, kFeature, kCompare, kLogical, kArith, kUdfCall };
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicOp { kAnd, kOr, kNot };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  // -- Factories ----------------------------------------------------------
  static ExprPtr Constant(Value v);
  static ExprPtr Var(std::string name);
  /// Feature lookup: evaluates `entity` (must yield an Entity) and reads
  /// the named feature from the feature store.
  static ExprPtr Feature(ExprPtr entity, std::string feature);
  static ExprPtr Compare(CmpOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr operand);
  static ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Udf(std::string name, std::vector<ExprPtr> args);

  // -- Introspection -------------------------------------------------------
  ExprKind kind() const { return kind_; }
  const Value& constant() const { return value_; }
  const std::string& name() const { return name_; }  // var/feature/udf name
  CmpOp cmp_op() const { return cmp_; }
  LogicOp logic_op() const { return logic_; }
  ArithOp arith_op() const { return arith_; }
  std::span<const ExprPtr> children() const { return children_; }

  bool is_and() const {
    return kind_ == ExprKind::kLogical && logic_ == LogicOp::kAnd;
  }

  /// Appends the qualified names of all UDFs referenced in this subtree.
  void collect_udfs(std::vector<std::string>* out) const;

  /// Human-readable rendering, e.g. "(sw(?prot) >= 0.9)".
  std::string to_string() const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kConst;
  Value value_;
  std::string name_;
  CmpOp cmp_ = CmpOp::kEq;
  LogicOp logic_ = LogicOp::kAnd;
  ArithOp arith_ = ArithOp::kAdd;
  std::vector<ExprPtr> children_;
};

/// One row of a solution table, as seen by expression evaluation.
struct RowView {
  const graph::SolutionTable* table = nullptr;
  std::size_t row = 0;
};

/// Everything expression evaluation needs. `cost` accumulates the modeled
/// nanoseconds of this evaluation (UDF costs plus per-node overhead); the
/// caller charges it to the rank's virtual clock.
struct EvalContext {
  RowView row;
  udf::UdfRegistry* registry = nullptr;
  udf::UdfProfiler* profiler = nullptr;
  udf::UdfContext udf_ctx;
  /// Relative speed of the executing rank (runtime::HeteroProfile); modeled
  /// UDF costs are divided by it before charging and profiling, so the
  /// profiler observes each rank's *effective* throughput (§2.4.2).
  double speed_factor = 1.0;
  sim::Nanos cost = 0;
};

/// Modeled per-node interpretation overhead.
constexpr sim::Nanos kExprNodeCost = 25;

/// Evaluates `e` against the context row. Never throws; type errors yield
/// null (which is falsy in FILTER position).
Value eval(const Expr& e, EvalContext& ctx);

}  // namespace ids::expr
