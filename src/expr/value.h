#pragma once

// Runtime values flowing through FILTER expression trees.
//
// A value is null, a boolean, a number, an entity reference (dictionary
// term id), or a string. Comparison and arithmetic follow SPARQL-like
// semantics: numeric types promote to double, type mismatches yield null,
// and null propagates (a FILTER that evaluates to null rejects the row).

#include <cstdint>
#include <string>
#include <variant>

#include "graph/dictionary.h"

namespace ids::expr {

/// Wrapper so an entity id is distinguishable from a plain integer.
struct Entity {
  graph::TermId id = graph::kInvalidTerm;
  friend bool operator==(const Entity&, const Entity&) = default;
};

using Value =
    std::variant<std::monostate, bool, std::int64_t, double, Entity, std::string>;

inline Value null_value() { return std::monostate{}; }
inline bool is_null(const Value& v) {
  return std::holds_alternative<std::monostate>(v);
}

/// SPARQL-style effective boolean value. Null/invalid -> false.
bool truthy(const Value& v);

/// Numeric view; returns false if the value is not numeric.
bool as_double(const Value& v, double* out);

/// Three-way comparison: -1/0/+1 via *out; returns false for incomparable
/// types (which makes any comparison operator yield null).
bool compare(const Value& a, const Value& b, int* out);

/// For logs and test output.
std::string to_string(const Value& v);

}  // namespace ids::expr
