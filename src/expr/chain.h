#pragma once

// Conjunctive-chain extraction for the planner (§2.4.3).
//
// FILTER expressions whose top is a chain of ANDs are split into
// conjuncts; each conjunct carries the UDFs it references. The planner
// reorders conjuncts (cheapest estimated cost first, ties broken by
// pruning power) and reassembles an equivalent AND chain. Because AND is
// commutative and associative and conjunct evaluation is side-effect-free
// on the solution, reordering never changes the surviving row set — only
// which conjunct gets to reject a row first.

#include <string>
#include <vector>

#include "expr/expr.h"

namespace ids::expr {

struct Conjunct {
  ExprPtr expr;
  std::vector<std::string> udfs;  // qualified names referenced in the subtree
};

/// Flattens nested ANDs into a conjunct list (left-to-right order).
/// A non-AND expression yields a single conjunct.
std::vector<Conjunct> flatten_conjuncts(const ExprPtr& root);

/// Rebuilds a left-deep AND chain from conjuncts (in the given order).
/// Must be called with at least one conjunct.
ExprPtr rebuild_chain(const std::vector<Conjunct>& conjuncts);

}  // namespace ids::expr
