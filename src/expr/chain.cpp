#include "expr/chain.h"

#include "common/check.h"
namespace ids::expr {

namespace {

void flatten(const ExprPtr& e, std::vector<Conjunct>* out) {
  if (e->is_and()) {
    flatten(e->children()[0], out);
    flatten(e->children()[1], out);
    return;
  }
  Conjunct c;
  c.expr = e;
  e->collect_udfs(&c.udfs);
  out->push_back(std::move(c));
}

}  // namespace

std::vector<Conjunct> flatten_conjuncts(const ExprPtr& root) {
  std::vector<Conjunct> out;
  flatten(root, &out);
  return out;
}

ExprPtr rebuild_chain(const std::vector<Conjunct>& conjuncts) {
  IDS_CHECK(!conjuncts.empty());
  ExprPtr acc = conjuncts[0].expr;
  for (std::size_t i = 1; i < conjuncts.size(); ++i) {
    acc = Expr::And(acc, conjuncts[i].expr);
  }
  return acc;
}

}  // namespace ids::expr
