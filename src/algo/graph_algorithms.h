#pragma once

// Distributed graph algorithms over the sharded triple store.
//
// §2.2 lists "algorithmic acceleration ... of graph algorithms such as
// PageRank" among IDS's core objectives. These implementations follow the
// engine's execution model: vertices are owned by the rank whose shard
// holds them (hash of the id), each iteration is a BSP superstep of local
// compute plus a costed message exchange, and the reported time is the
// max-over-ranks virtual time.
//
// Edges are selected by predicate (kInvalidTerm = every predicate), so an
// algorithm can run over e.g. only `chembl:inhibits` edges of the
// life-sciences graph.

#include <cstdint>
#include <unordered_map>

#include "graph/triple_store.h"
#include "runtime/topology.h"
#include "sim/time.h"

namespace ids::algo {

struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 30;
  /// Stop when the L1 delta between iterations falls below this.
  double tolerance = 1e-9;
};

struct PageRankResult {
  std::unordered_map<graph::TermId, double> rank;
  int iterations = 0;
  double modeled_seconds = 0.0;
};

/// PageRank over the directed edges with predicate `predicate`.
/// Ranks sum to 1 over all vertices incident to a selected edge.
PageRankResult pagerank(const graph::TripleStore& store,
                        const runtime::Topology& topology,
                        graph::TermId predicate = graph::kInvalidTerm,
                        const PageRankOptions& options = {});

struct BfsResult {
  /// Hop distance from the source for every reachable vertex.
  std::unordered_map<graph::TermId, int> distance;
  int supersteps = 0;
  double modeled_seconds = 0.0;
};

/// Parallel BFS from `source`, treating edges as undirected.
BfsResult bfs(const graph::TripleStore& store,
              const runtime::Topology& topology, graph::TermId source,
              graph::TermId predicate = graph::kInvalidTerm);

struct ComponentsResult {
  /// Component label (the minimum vertex id in the component).
  std::unordered_map<graph::TermId, graph::TermId> component;
  std::size_t num_components = 0;
  int supersteps = 0;
  double modeled_seconds = 0.0;
};

/// Connected components by min-label propagation (undirected).
ComponentsResult connected_components(
    const graph::TripleStore& store, const runtime::Topology& topology,
    graph::TermId predicate = graph::kInvalidTerm);

}  // namespace ids::algo
