#include "algo/graph_algorithms.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "runtime/exchange.h"
#include "sim/virtual_clock.h"

namespace ids::algo {

namespace {

using graph::TermId;

/// Per-rank adjacency extracted from the store, vertex ownership by the
/// store's subject sharding.
struct DistributedGraph {
  int num_ranks = 0;
  const graph::TripleStore* store = nullptr;
  // edges[r] = (u, v) pairs whose source u is owned by rank r.
  std::vector<std::vector<std::pair<TermId, TermId>>> edges;
  // vertices[r] = owned vertex ids (sources and destinations hashed there).
  std::vector<std::vector<TermId>> vertices;
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;

  int owner(TermId v) const { return store->shard_of_subject(v); }
};

DistributedGraph extract(const graph::TripleStore& store, int num_ranks,
                         TermId predicate, bool undirected) {
  DistributedGraph g;
  g.num_ranks = num_ranks;
  g.store = &store;
  g.edges.resize(static_cast<std::size_t>(num_ranks));
  g.vertices.resize(static_cast<std::size_t>(num_ranks));

  graph::TriplePattern pattern{
      graph::PatternTerm::Var("s"),
      predicate == graph::kInvalidTerm ? graph::PatternTerm::Var("p")
                                       : graph::PatternTerm::Const(predicate),
      graph::PatternTerm::Var("o")};

  std::unordered_map<TermId, bool> seen;
  for (int shard = 0; shard < store.num_shards(); ++shard) {
    store.shard(shard).scan(pattern, [&](const graph::Triple& t) {
      g.edges[static_cast<std::size_t>(g.owner(t.s))].emplace_back(t.s, t.o);
      ++g.num_edges;
      if (undirected) {
        g.edges[static_cast<std::size_t>(g.owner(t.o))].emplace_back(t.o, t.s);
      }
      for (TermId v : {t.s, t.o}) {
        if (seen.emplace(v, true).second) {
          g.vertices[static_cast<std::size_t>(g.owner(v))].push_back(v);
        }
      }
    });
  }
  g.num_vertices = seen.size();
  return g;
}

/// Charges one BSP superstep: local work proportional to edges touched,
/// plus an exchange of `messages[r]` outbound messages of `bytes_each`.
void charge_superstep(sim::ClockSet& clocks, const runtime::Topology& topo,
                      const DistributedGraph& g,
                      const std::vector<std::uint64_t>& messages_out,
                      std::uint64_t bytes_each) {
  constexpr double kSecondsPerEdge = 4.0e-9;  // cache-friendly edge scans
  for (int r = 0; r < g.num_ranks; ++r) {
    auto ru = static_cast<std::size_t>(r);
    clocks.at(ru).advance(sim::from_seconds(
        kSecondsPerEdge * static_cast<double>(g.edges[ru].size())));
    runtime::TrafficSummary t;
    // Destinations are hash-spread: approximate all traffic as inter-node
    // when the machine has more than one node.
    std::uint64_t bytes = messages_out[ru] * bytes_each;
    if (topo.num_nodes > 1) {
      t.inter_sent = bytes;
      t.inter_recv = bytes;
    } else {
      t.intra_sent = bytes;
      t.intra_recv = bytes;
    }
    t.messages = std::min<std::uint64_t>(
        messages_out[ru], static_cast<std::uint64_t>(g.num_ranks));
    runtime::charge_traffic(clocks.at(ru), topo, t);
  }
  clocks.barrier();
}

}  // namespace

PageRankResult pagerank(const graph::TripleStore& store,
                        const runtime::Topology& topology,
                        graph::TermId predicate,
                        const PageRankOptions& options) {
  PageRankResult result;
  const int p = topology.num_ranks();
  DistributedGraph g = extract(store, p, predicate, /*undirected=*/false);
  if (g.num_vertices == 0) return result;

  sim::ClockSet clocks(static_cast<std::size_t>(p));
  const double n = static_cast<double>(g.num_vertices);

  std::unordered_map<TermId, double> rank;
  std::unordered_map<TermId, double> out_degree;
  rank.reserve(g.num_vertices);
  for (const auto& verts : g.vertices) {
    for (TermId v : verts) rank[v] = 1.0 / n;
  }
  for (const auto& edges : g.edges) {
    for (const auto& [u, v] : edges) {
      (void)v;
      out_degree[u] += 1.0;
    }
  }

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::unordered_map<TermId, double> incoming;
    incoming.reserve(g.num_vertices);
    std::vector<std::uint64_t> messages(static_cast<std::size_t>(p), 0);
    double dangling_mass = 0.0;

    for (int r = 0; r < p; ++r) {
      auto ru = static_cast<std::size_t>(r);
      for (const auto& [u, v] : g.edges[ru]) {
        incoming[v] += rank[u] / out_degree[u];
        if (g.owner(v) != r) ++messages[ru];
      }
      for (TermId v : g.vertices[ru]) {
        if (out_degree.find(v) == out_degree.end()) dangling_mass += rank[v];
      }
    }

    double delta = 0.0;
    std::unordered_map<TermId, double> next;
    next.reserve(g.num_vertices);
    for (const auto& verts : g.vertices) {
      for (TermId v : verts) {
        double in = 0.0;
        if (auto it = incoming.find(v); it != incoming.end()) in = it->second;
        double nv = (1.0 - options.damping) / n +
                    options.damping * (in + dangling_mass / n);
        delta += std::abs(nv - rank[v]);
        next[v] = nv;
      }
    }
    rank = std::move(next);
    charge_superstep(clocks, topology, g, messages, sizeof(TermId) + 8);
    result.iterations = iter + 1;
    if (delta < options.tolerance) break;
  }

  result.rank = std::move(rank);
  result.modeled_seconds = sim::to_seconds(clocks.max());
  return result;
}

BfsResult bfs(const graph::TripleStore& store,
              const runtime::Topology& topology, graph::TermId source,
              graph::TermId predicate) {
  BfsResult result;
  const int p = topology.num_ranks();
  DistributedGraph g = extract(store, p, predicate, /*undirected=*/true);
  sim::ClockSet clocks(static_cast<std::size_t>(p));

  // Adjacency for fast frontier expansion.
  std::unordered_map<TermId, std::vector<TermId>> adj;
  for (const auto& edges : g.edges) {
    for (const auto& [u, v] : edges) adj[u].push_back(v);
  }
  if (adj.find(source) == adj.end()) {
    bool exists = false;
    for (const auto& verts : g.vertices) {
      for (TermId v : verts) {
        if (v == source) exists = true;
      }
    }
    if (!exists) return result;
  }

  std::vector<TermId> frontier = {source};
  result.distance[source] = 0;
  int depth = 0;
  while (!frontier.empty()) {
    ++depth;
    std::vector<TermId> next;
    std::vector<std::uint64_t> messages(static_cast<std::size_t>(p), 0);
    for (TermId u : frontier) {
      auto it = adj.find(u);
      if (it == adj.end()) continue;
      int u_owner = g.owner(u);
      for (TermId v : it->second) {
        if (result.distance.emplace(v, depth).second) {
          next.push_back(v);
          if (g.owner(v) != u_owner) {
            ++messages[static_cast<std::size_t>(u_owner)];
          }
        }
      }
    }
    charge_superstep(clocks, topology, g, messages, sizeof(TermId) + 4);
    ++result.supersteps;
    frontier = std::move(next);
  }

  result.modeled_seconds = sim::to_seconds(clocks.max());
  return result;
}

ComponentsResult connected_components(const graph::TripleStore& store,
                                      const runtime::Topology& topology,
                                      graph::TermId predicate) {
  ComponentsResult result;
  const int p = topology.num_ranks();
  DistributedGraph g = extract(store, p, predicate, /*undirected=*/true);
  sim::ClockSet clocks(static_cast<std::size_t>(p));

  std::unordered_map<TermId, TermId> label;
  for (const auto& verts : g.vertices) {
    for (TermId v : verts) label[v] = v;
  }

  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::uint64_t> messages(static_cast<std::size_t>(p), 0);
    for (int r = 0; r < p; ++r) {
      auto ru = static_cast<std::size_t>(r);
      for (const auto& [u, v] : g.edges[ru]) {
        if (label[u] < label[v]) {
          label[v] = label[u];
          changed = true;
          if (g.owner(v) != r) ++messages[ru];
        }
      }
    }
    charge_superstep(clocks, topology, g, messages, 2 * sizeof(TermId));
    ++result.supersteps;
  }

  std::unordered_map<TermId, bool> roots;
  for (const auto& [v, l] : label) roots.emplace(l, true);
  result.num_components = roots.size();
  result.component = std::move(label);
  result.modeled_seconds = sim::to_seconds(clocks.max());
  return result;
}

}  // namespace ids::algo
