#pragma once

// The NCNPR drug-repurposing workflow (§4).
//
// Packages the paper's five-step query against the synthetic life-sciences
// graph: (1) find proteins related to the target (the P29274 analogue),
// (2) retrieve its sequence/structure, (3) assemble candidate inhibitor
// compounds, (4) filter by Smith-Waterman similarity, pIC50 and DTBA, and
// (5) dock the surviving compounds. The four UDFs are registered as a
// dynamic "ncnpr" module (the paper's Python-module path) and are
// intentionally ordered by increasing cost and pruning power — which the
// planner then re-derives on its own from profiling data.

#include <memory>

#include "core/ast.h"
#include "core/engine.h"
#include "datagen/lifesci.h"
#include "models/cost_profile.h"
#include "models/docking.h"

namespace ids::core {

/// The generated dataset plus the stores the engine queries.
struct NcnprData {
  std::unique_ptr<graph::TripleStore> triples;
  std::unique_ptr<store::FeatureStore> features;
  std::unique_ptr<store::InvertedIndex> keywords;
  std::unique_ptr<store::VectorStore> vectors;
  datagen::LifeSciDataset dataset;

  /// Target protein sequence (step 2 of the workflow).
  std::string target_sequence;
};

/// Generates the synthetic graph sharded for `num_shards` ranks and
/// finalizes the stores.
NcnprData build_ncnpr_data(const datagen::LifeSciConfig& config,
                           int num_shards);

/// Registers the workflow UDFs on the engine (module "ncnpr"):
///   ncnpr.sw_similarity(?prot)  -> normalized SW similarity to the target
///   ncnpr.pic50(?cpd)           -> pIC50 from the stored IC50 assay
///   ncnpr.dtba(?prot, ?cpd)     -> predicted binding affinity (pKd-like)
///   ncnpr.dock(?cpd)            -> docking energy against the target
///                                  receptor (kcal/mol; lower = better)
/// The receptor comes from the structure predictor applied to the target
/// sequence (the AlphaFold step). Docking parameters are configurable for
/// the benches.
void register_ncnpr_udfs(IdsEngine* engine, const NcnprData& data,
                         const models::DockingParams& docking = {});

struct NcnprThresholds {
  double min_sw_similarity = 0.90;  // Table 2's sweep variable
  double min_pic50 = 5.0;           // potency floor
  double min_dtba = 7.4;            // predicted-affinity floor (~p25 of the
                                    // synthetic DTBA score distribution)
};

/// Builds the 5-step query. `docking_cached` routes the docking INVOKE
/// through the engine's global cache (when one is configured).
Query make_ncnpr_query(const NcnprData& data, const NcnprThresholds& t,
                       bool with_docking = true, bool docking_cached = false);

}  // namespace ids::core
