#include "core/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>

namespace ids::core {

namespace {

void add_vars(const graph::TriplePattern& p, std::set<std::string>* vars) {
  if (p.s.is_var) vars->insert(p.s.var);
  if (p.p.is_var) vars->insert(p.p.var);
  if (p.o.is_var) vars->insert(p.o.var);
}

bool shares_var(const graph::TriplePattern& p,
                const std::set<std::string>& vars) {
  return (p.s.is_var && vars.contains(p.s.var)) ||
         (p.p.is_var && vars.contains(p.p.var)) ||
         (p.o.is_var && vars.contains(p.o.var));
}

bool subject_bound(const graph::TriplePattern& p,
                   const std::set<std::string>& vars) {
  return !p.s.is_var || vars.contains(p.s.var);
}

}  // namespace

std::size_t estimate_cardinality(const graph::TripleStore& store,
                                 const graph::TriplePattern& pattern) {
  std::size_t n = 0;
  for (int s = 0; s < store.num_shards(); ++s) {
    n += store.shard(s).count(pattern);
  }
  return n;
}

std::vector<std::size_t> order_patterns(
    const graph::TripleStore& store,
    const std::vector<graph::TriplePattern>& patterns) {
  const std::size_t n = patterns.size();
  std::vector<std::size_t> cardinality(n);
  for (std::size_t i = 0; i < n; ++i) {
    cardinality[i] = estimate_cardinality(store, patterns[i]);
  }

  std::vector<std::size_t> order;
  std::vector<bool> used(n, false);
  std::set<std::string> bound;

  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    // Priority: (connected, subject-bound) > (connected) > any; within a
    // class, lowest cardinality, then lowest index (determinism).
    int best_class = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      int cls;
      if (step == 0) {
        cls = 0;
      } else if (shares_var(patterns[i], bound)) {
        cls = subject_bound(patterns[i], bound) ? 2 : 1;
      } else {
        cls = 0;
      }
      if (best == n || cls > best_class ||
          (cls == best_class && cardinality[i] < cardinality[best])) {
        best = i;
        best_class = cls;
      }
    }
    used[best] = true;
    order.push_back(best);
    add_vars(patterns[best], &bound);
  }
  return order;
}

ConjunctEstimate estimate_conjunct(const expr::Conjunct& conjunct, int rank,
                                   const udf::UdfProfiler& profiler) {
  ConjunctEstimate e;
  for (const auto& name : conjunct.udfs) {
    e.cost_seconds += profiler.estimated_cost_seconds(rank, name);
    const udf::UdfStats agg = profiler.aggregate(name);
    e.rejection_rate = std::max(e.rejection_rate, agg.rejection_rate());
  }
  return e;
}

std::vector<std::size_t> order_conjuncts(
    const std::vector<expr::Conjunct>& conjuncts, int rank,
    const udf::UdfProfiler& profiler, double similar_ratio) {
  const std::size_t n = conjuncts.size();
  std::vector<ConjunctEstimate> est(n);
  for (std::size_t i = 0; i < n; ++i) {
    est[i] = estimate_conjunct(conjuncts[i], rank, profiler);
  }
  // "Similar computational time" (§2.4.3) is made transitive by bucketing
  // costs logarithmically at the similarity ratio; within a bucket, higher
  // pruning power goes first, and stable sort preserves the written order
  // for full ties.
  auto bucket_of = [similar_ratio](double cost) {
    if (cost <= 0.0) return std::numeric_limits<int>::min();
    return static_cast<int>(std::floor(std::log(cost) / std::log(similar_ratio)));
  };
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     int ba = bucket_of(est[a].cost_seconds);
                     int bb = bucket_of(est[b].cost_seconds);
                     if (ba != bb) return ba < bb;
                     return est[a].rejection_rate > est[b].rejection_rate;
                   });
  return order;
}

double estimate_solution_seconds(
    const std::vector<expr::Conjunct>& conjuncts,
    const std::vector<std::size_t>& order, int rank,
    const udf::UdfProfiler& profiler) {
  double total = 0.0;
  double reach_probability = 1.0;
  for (std::size_t idx : order) {
    ConjunctEstimate e = estimate_conjunct(conjuncts[idx], rank, profiler);
    total += reach_probability * e.cost_seconds;
    reach_probability *= std::max(0.0, 1.0 - e.rejection_rate);
  }
  return total;
}

}  // namespace ids::core
