#pragma once

// Text query language.
//
// A SPARQL-flavoured surface syntax for the unified engine, covering all
// clause types of core::Query:
//
//   SELECT ?cpd ?prot
//   WHERE {
//     ?prot rdf:type bio:Protein .
//     ?prot up:reviewed "true" .
//     ?cpd chembl:inhibits ?prot .
//   }
//   KEYWORD ?prot MATCHES ALL ("adenosine", "receptor")
//   VECTOR ?prot NEAREST 10 COSINE [0.1, 0.2, ...]
//   FILTER ncnpr.sw_similarity(?prot) >= 0.9 && ncnpr.pic50(?cpd) >= 5
//   DISTINCT ?cpd
//   INVOKE ncnpr.dock(?cpd) AS ?energy CACHE "vina/P29274"
//   ORDER BY ?energy DESC
//   LIMIT 10
//
// Expressions support ||, &&, !, comparisons, arithmetic, numeric/string/
// boolean literals, variables (?x), feature access (?x.feature), and UDF
// calls (module.method(...)). IRIs in patterns are interned into the
// store's dictionary (an unknown IRI simply matches nothing).

#include <string_view>

#include "common/result.h"
#include "core/ast.h"
#include "graph/dictionary.h"

namespace ids::core {

/// Parses a query. Errors carry a message with the offending position.
Result<Query> parse_query(std::string_view text, graph::Dictionary* dict);

/// Parses a standalone FILTER expression (exposed for tests and tools).
Result<expr::ExprPtr> parse_expression(std::string_view text);

}  // namespace ids::core
