#pragma once

// The IDS engine: a massively parallel query executor over the 3-in-1
// datastore (§2.2), with UDF profiling (§2.4.1), solution re-balancing
// (§2.4.2), FILTER chain reordering (§2.4.3), and global-cache-backed
// model invocation (§3).
//
// Execution model: ranks are first-class objects (see src/runtime).
// Shard i of every store belongs to rank i; operators run real
// computation per rank on a thread pool while modeled time accrues on
// per-rank virtual clocks, and collectives (shuffles, gathers) charge the
// alpha-beta fabric model and synchronize clocks. A query's reported time
// is the critical-path (max-over-ranks) virtual time, stage by stage.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/manager.h"
#include "core/ast.h"
#include "core/rebalancer.h"
#include "graph/solution.h"
#include "graph/triple_store.h"
#include "models/cost_profile.h"
#include "runtime/hetero.h"
#include "runtime/topology.h"
#include "store/feature_store.h"
#include "store/inverted_index.h"
#include "store/vector_store.h"
#include "telemetry/metrics.h"
#include "telemetry/query_stats.h"
#include "telemetry/trace.h"
#include "udf/profiler.h"
#include "udf/registry.h"

namespace ids::core {

struct EngineOptions {
  runtime::Topology topology = runtime::Topology::laptop();
  /// Per-rank relative speeds; empty = homogeneous.
  runtime::HeteroProfile hetero;
  /// Kernel cost calibration (see models/cost_profile.h).
  models::CostProfile costs;
  RebalancePolicy rebalance = RebalancePolicy::kThroughput;
  /// §2.4.3 conjunct reordering; off = evaluate FILTERs as written.
  bool reorder_filters = true;
  /// Scale-model knob (DESIGN.md): each physical element stands for
  /// `row_multiplier` logical elements of the paper-scale run. Graph
  /// operator costs (scan/join/distinct) scale by it, and each FILTER
  /// conjunct evaluation is charged as `row_multiplier` logical
  /// evaluations — unless the conjunct's UDF has an explicit override in
  /// `udf_call_multiplier`. This reproduces the paper's stage populations
  /// (66M SW comparisons but only thousands of DTBA inferences) without
  /// distorting per-call costs. INVOKE executions are always modeled once.
  /// Leave at 1 for real workloads.
  double row_multiplier = 1.0;
  /// Per-UDF logical-call multipliers overriding row_multiplier in FILTER
  /// conjuncts that reference the UDF (e.g. {"ncnpr.dtba", 20}).
  // Cold path: consulted once per conjunct at plan time, never per row.
  std::unordered_map<std::string, double> udf_call_multiplier;  // lint:allow-unordered
  /// Optional global distributed cache for INVOKE clauses.
  cache::CacheManager* cache = nullptr;
  /// Trace sink: when set, every execute() records a span tree into it —
  /// query → stage → per-rank operator → per-call (UDF exec, cache
  /// get/put) — with modeled and wall time on every span. nullptr = no
  /// tracing (and no tracing overhead on the hot path).
  telemetry::Tracer* tracer = nullptr;
  /// Metrics sink for engine instruments (ids_engine_queries_total,
  /// ids_engine_stage_seconds, ids_engine_rebalance_total). nullptr = the
  /// process-global registry.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Observability rings (see src/telemetry): when set, every execute()
  /// pushes its completed span tree / resource account, feeding the obs
  /// server's /tracez and /statusz. The trace ring only receives spans
  /// when `tracer` is also set.
  telemetry::TraceRing* trace_ring = nullptr;
  telemetry::QueryStatsRing* query_stats = nullptr;
  std::uint64_t seed = 0x1D5;
};

struct StageTiming {
  std::string stage;     // "scan", "join", "rebalance", "filter", ...
  double seconds = 0.0;  // modeled critical-path time of the stage
};

struct QueryResult {
  graph::SolutionTable solutions;  // gathered, ordered, limited, projected
  double total_seconds = 0.0;
  std::vector<StageTiming> stages;

  std::size_t rows_after_patterns = 0;
  std::size_t rows_after_filters = 0;
  std::size_t rows_invoked = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  bool used_throughput_rebalance = false;

  /// Per-query resource accounting (ISSUE 9): cache bytes by serving
  /// tier, rows moved, UDF executions, peak SolutionTable bytes, and
  /// per-stage modeled-vs-wall divergence. Always populated.
  telemetry::QueryResourceAccount account;

  /// Sum of stage times whose name starts with `prefix`.
  double stage_seconds(std::string_view prefix) const;
  /// Total minus stages whose name starts with `prefix` (e.g. the paper's
  /// "excluding docking" analysis of Fig 4).
  double seconds_excluding(std::string_view prefix) const;
};

class IdsEngine {
 public:
  /// All stores must be sharded with num_shards == topology.num_ranks()
  /// (shard i lives on rank i); `keywords`/`vectors` are optional.
  IdsEngine(EngineOptions options, graph::TripleStore* triples,
            store::FeatureStore* features,
            store::InvertedIndex* keywords = nullptr,
            store::VectorStore* vectors = nullptr);

  const EngineOptions& options() const { return options_; }
  udf::UdfRegistry& registry() { return registry_; }
  udf::UdfProfiler& profiler() { return profiler_; }

  /// Executes a query. Deterministic for a given engine state; profiling
  /// data accumulated by earlier queries influences planning of later
  /// ones (§2.4.1: the profile store is continually updated).
  QueryResult execute(const Query& query);

  /// Human-readable execution plan for the query *as it would run now*
  /// (pattern order with cardinality estimates, FILTER conjunct order
  /// from the current profiles, rank order divergence, invoke stages).
  /// Does not execute anything or touch the profiles.
  std::string explain(const Query& query) const;

 private:
  EngineOptions options_;
  graph::TripleStore* triples_;
  store::FeatureStore* features_;
  store::InvertedIndex* keywords_;
  store::VectorStore* vectors_;
  udf::UdfRegistry registry_;
  udf::UdfProfiler profiler_;
};

}  // namespace ids::core
