#include "core/rebalancer.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
namespace ids::core {

std::vector<std::size_t> count_based_targets(std::size_t total, int ranks) {
  IDS_CHECK(ranks > 0);
  auto p = static_cast<std::size_t>(ranks);
  std::vector<std::size_t> t(p, total / p);
  for (std::size_t r = 0; r < total % p; ++r) ++t[r];
  return t;
}

std::vector<std::size_t> throughput_targets(
    std::size_t total, const std::vector<double>& throughput) {
  const std::size_t p = throughput.size();
  IDS_CHECK(p > 0);
  double sum = 0.0;
  for (double t : throughput) sum += std::max(0.0, t);
  if (sum <= 0.0) return count_based_targets(total, static_cast<int>(p));

  // Largest-remainder apportionment: floor the proportional shares, then
  // hand the leftover rows to the largest fractional parts (ties to the
  // lower rank index for determinism).
  std::vector<std::size_t> targets(p, 0);
  std::vector<std::pair<double, std::size_t>> fractions;
  fractions.reserve(p);
  std::size_t assigned = 0;
  for (std::size_t r = 0; r < p; ++r) {
    double share = static_cast<double>(total) *
                   std::max(0.0, throughput[r]) / sum;
    auto fl = static_cast<std::size_t>(share);
    targets[r] = fl;
    assigned += fl;
    fractions.emplace_back(share - static_cast<double>(fl), r);
  }
  std::sort(fractions.begin(), fractions.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::size_t leftover = total - assigned;
  for (std::size_t i = 0; i < leftover; ++i) {
    ++targets[fractions[i % p].second];
  }
  return targets;
}

RebalanceDecision decide_rebalance(RebalancePolicy policy,
                                   const std::vector<std::size_t>& counts,
                                   const std::vector<double>& throughput,
                                   double ratio_threshold) {
  RebalanceDecision d;
  if (policy == RebalancePolicy::kNone || counts.empty()) return d;

  std::size_t total = std::accumulate(counts.begin(), counts.end(),
                                      static_cast<std::size_t>(0));
  const int p = static_cast<int>(counts.size());

  bool have_profiles = false;
  double lo = 0.0;
  double hi = 0.0;
  if (throughput.size() == counts.size()) {
    have_profiles = true;
    lo = hi = -1.0;
    for (double t : throughput) {
      if (t <= 0.0) {
        have_profiles = false;  // some rank has no estimate yet
        break;
      }
      if (lo < 0.0 || t < lo) lo = t;
      if (t > hi) hi = t;
    }
  }

  d.rebalance = true;
  if (policy == RebalancePolicy::kThroughput && have_profiles) {
    d.speed_ratio = hi / lo;
    if (d.speed_ratio > ratio_threshold) {
      d.used_throughput = true;
      d.targets = throughput_targets(total, throughput);
      return d;
    }
  }
  d.targets = count_based_targets(total, p);
  return d;
}

double completion_seconds(const std::vector<std::size_t>& counts,
                          const std::vector<double>& throughput) {
  IDS_CHECK(counts.size() == throughput.size());
  double worst = 0.0;
  for (std::size_t r = 0; r < counts.size(); ++r) {
    if (counts[r] == 0) continue;
    double t = throughput[r] > 0.0
                   ? static_cast<double>(counts[r]) / throughput[r]
                   : 0.0;
    worst = std::max(worst, t);
  }
  return worst;
}

}  // namespace ids::core
