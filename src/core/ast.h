#pragma once

// Query representation.
//
// An IDS query spans the engine's three retrieval modalities plus model
// execution, mirroring §2.2's "keyword search, set-theoretic operations,
// and linear-algebraic methods" unified with UDF/model invocation:
//
//   patterns  — basic graph patterns matched against the triple store
//               (the set-theoretic/graph leg; joined on shared variables)
//   keywords  — bind or restrict a variable by inverted-index search
//   vectors   — restrict a variable to the top-k nearest embeddings
//   filters   — FILTER conjuncts over expression trees, including UDF
//               calls (reordered by the planner, §2.4.3)
//   distinct_var — project rows to distinct values of one variable before
//               invocation (e.g. dock each *compound* once)
//   invokes   — per-row model executions whose results become new numeric
//               columns (e.g. docking energy); optionally backed by the
//               global cache
//   order_by/limit/select — final shaping of the gathered result

#include <cstdint>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "graph/triple.h"
#include "store/vector_store.h"

namespace ids::core {

struct KeywordClause {
  std::string var;                  // id variable to bind/restrict
  std::vector<std::string> tokens;
  bool conjunctive = true;          // AND of tokens (vs OR)
};

struct VectorClause {
  std::string var;                  // id variable restricted to the top-k
  std::vector<float> query;         // query embedding
  std::size_t k = 10;
  store::Metric metric = store::Metric::kCosine;
  /// Approximate search through a per-shard IVF index instead of the
  /// exact scan: probe the `nprobe` nearest of `ivf_clusters` clusters.
  /// Trades recall for a proportional cut in scan work (see
  /// store/ivf_index.h). 0 = exact scan.
  int ivf_nprobe = 0;
  int ivf_clusters = 16;
};

struct InvokeClause {
  std::string udf;                  // registered UDF name
  std::vector<expr::ExprPtr> args;  // evaluated per row
  std::string out_var;              // numeric column receiving the result
  /// Cache integration: when set and the engine has a global cache, the
  /// invocation result is stashed/reused under
  /// "<cache_prefix>/<arg values>" (the paper caches complete Vina
  /// outputs as named objects, §3.2).
  bool use_cache = false;
  std::string cache_prefix;
  /// Modeled size of the cached artifact (a full Vina output, not just the
  /// scalar we extract from it).
  std::size_t cached_payload_bytes = 50'000;
};

struct Query {
  std::vector<graph::TriplePattern> patterns;
  std::vector<KeywordClause> keywords;
  std::vector<VectorClause> vectors;
  std::vector<expr::ExprPtr> filters;   // implicitly ANDed conjuncts
  std::string distinct_var;             // empty = no distinct stage
  std::vector<InvokeClause> invokes;
  std::string order_by;                 // numeric var; ascending
  bool order_descending = false;
  std::size_t limit = 0;                // 0 = unlimited
  std::vector<std::string> select;      // empty = all id vars
};

}  // namespace ids::core
