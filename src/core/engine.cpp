#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <set>

#include "common/check.h"
#include "common/flat_map.h"
#include "common/logging.h"
#include "common/simd.h"
#include "common/rng.h"
#include "core/planner.h"
#include "expr/chain.h"
#include "runtime/exchange.h"
#include "store/ivf_index.h"
#include "runtime/rank_exec.h"
#include "telemetry/profiler.h"

namespace ids::core {

double QueryResult::stage_seconds(std::string_view prefix) const {
  double s = 0.0;
  for (const auto& st : stages) {
    if (st.stage.starts_with(prefix)) s += st.seconds;
  }
  return s;
}

double QueryResult::seconds_excluding(std::string_view prefix) const {
  return total_seconds - stage_seconds(prefix);
}

namespace {

using graph::RowIndex;
using graph::SolutionTable;
using graph::TermId;
using graph::TriplePattern;

/// Distinct id variables of a pattern, in s, p, o order.
std::vector<std::string> pattern_vars(const TriplePattern& p) {
  std::vector<std::string> vars;
  auto add = [&vars](const graph::PatternTerm& t) {
    if (t.is_var &&
        std::find(vars.begin(), vars.end(), t.var) == vars.end()) {
      vars.push_back(t.var);
    }
  };
  add(p.s);
  add(p.p);
  add(p.o);
  return vars;
}

/// The whole execution state of one query.
class QueryExecution {
 public:
  QueryExecution(const EngineOptions& opts, graph::TripleStore* triples,
                 store::FeatureStore* features,
                 store::InvertedIndex* keywords, store::VectorStore* vectors,
                 udf::UdfRegistry* registry, udf::UdfProfiler* profiler)
      : opts_(opts),
        triples_(triples),
        features_(features),
        keywords_(keywords),
        vectors_(vectors),
        registry_(registry),
        profiler_(profiler),
        tracer_(opts.tracer),
        metrics_(opts.metrics != nullptr
                     ? opts.metrics
                     : &telemetry::MetricsRegistry::global()),
        p_(opts.topology.num_ranks()),
        clocks_(static_cast<std::size_t>(p_)) {
    Rng seeder(opts.seed);
    rank_rngs_.reserve(static_cast<std::size_t>(p_));
    for (int r = 0; r < p_; ++r) {
      rank_rngs_.push_back(seeder.fork(static_cast<std::uint64_t>(r)));
    }
  }

  QueryResult run(const Query& query) {
    telemetry::ProfileScope profile_scope("engine.query");
    metrics_->counter("ids_engine_queries_total")->inc();
    query_wall_start_ = telemetry::Tracer::wall_now_ns();
    stage_wall_start_ = query_wall_start_;
    if (opts_.cache != nullptr) cache_query_baseline_ = opts_.cache->stats();
    if (tracer_ != nullptr) {
      // First span index of this query, so the trace ring gets exactly
      // this query's tree out of a tracer shared across queries.
      trace_base_ = tracer_->size();
      root_span_ =
          tracer_->begin_span("query", "query", telemetry::kNoSpan, -1, 0);
      // Stamp the active SIMD dispatch level so every trace records which
      // kernel variants produced it (simd.cpp exports the matching gauge).
      tracer_->add_attr(root_span_, "simd_level",
                        simd::level_name(simd::active_level()));
    }

    // Graph patterns in planner order.
    auto order = order_patterns(*triples_, query.patterns);
    for (std::size_t i = 0; i < order.size(); ++i) {
      apply_pattern(query.patterns[order[i]], i == 0);
    }
    std::size_t rows = total_rows();
    result_.rows_after_patterns = rows;

    for (const auto& kc : query.keywords) apply_keyword(kc);
    for (const auto& vc : query.vectors) apply_vector(vc);

    apply_filters(query);
    result_.rows_after_filters = total_rows();

    if (!query.distinct_var.empty()) apply_distinct(query.distinct_var);

    for (const auto& inv : query.invokes) apply_invoke(inv);

    gather_and_finish(query);
    finish_account();
    if (tracer_ != nullptr) {
      tracer_->add_attr(
          root_span_, "rows",
          static_cast<std::uint64_t>(result_.solutions.num_rows()));
      tracer_->add_attr(root_span_, "cache_hits",
                        static_cast<std::uint64_t>(result_.cache_hits));
      tracer_->add_attr(root_span_, "cache_misses",
                        static_cast<std::uint64_t>(result_.cache_misses));
      tracer_->add_attr(root_span_, "rows_partitioned",
                        result_.account.rows_partitioned);
      tracer_->add_attr(root_span_, "udf_invocations",
                        result_.account.udf_invocations);
      tracer_->add_attr(root_span_, "peak_solution_bytes",
                        result_.account.peak_solution_bytes);
      tracer_->add_attr(root_span_, "divergence_seconds",
                        result_.account.divergence_seconds());
      tracer_->end_span(root_span_, last_mark_);
    }
    if (opts_.query_stats != nullptr) {
      result_.account.sequence = opts_.query_stats->push(result_.account);
    }
    if (opts_.trace_ring != nullptr && tracer_ != nullptr) {
      opts_.trace_ring->push(tracer_->snapshot_tail(trace_base_),
                             tracer_->dropped());
    }
    return std::move(result_);
  }

 private:
  double speed(int r) const { return opts_.hetero.at(r); }

  /// Charges modeled *compute* time, scaled by the rank's speed factor.
  void charge_compute(int r, sim::Nanos raw) {
    double s = speed(r);
    clocks_.at(static_cast<std::size_t>(r))
        .advance(static_cast<sim::Nanos>(static_cast<double>(raw) /
                                         (s > 0.0 ? s : 1.0)));
  }

  /// Graph-operator compute: scaled by the scale-model multiplier (one
  /// physical triple/row stands for row_multiplier logical ones).
  void charge_graph_op(int r, sim::Nanos raw) {
    charge_compute(r, static_cast<sim::Nanos>(static_cast<double>(raw) *
                                              opts_.row_multiplier));
  }

  /// Fixed per-operator overhead on every rank (launch + straggler skew +
  /// global sync; see CostProfile::operator_overhead_seconds).
  void charge_operator_overhead() {
    sim::Nanos o = sim::from_seconds(opts_.costs.operator_overhead_seconds);
    if (o == 0) return;
    for (std::size_t r = 0; r < clocks_.size(); ++r) clocks_.at(r).advance(o);
  }

  /// Opens the trace span of the pipeline stage that is starting. Each
  /// stage ends in mark(), which closes the span at the barrier time.
  /// Call after any early-return guards, so skipped stages leave no span.
  void stage_begin(std::string_view name) {
    if (tracer_ == nullptr) return;
    stage_span_ =
        tracer_->begin_span(name, "stage", root_span_, -1, last_mark_);
  }

  /// Ends a pipeline stage: synchronizes clocks and records the stage's
  /// critical-path duration (as a StageTiming, as the stage trace span's
  /// modeled range — bit-identical, both are `now - last_mark_` — and as
  /// an ids_engine_stage_seconds observation).
  void mark(std::string stage) {
    sim::Nanos now = clocks_.barrier();
    double seconds = sim::to_seconds(now - last_mark_);
    const std::uint64_t wall_now = telemetry::Tracer::wall_now_ns();
    const double wall_seconds =
        static_cast<double>(wall_now - stage_wall_start_) * 1e-9;
    if (tracer_ != nullptr) {
      if (stage_span_ != telemetry::kNoSpan) {
        tracer_->end_span(stage_span_, now);
        stage_span_ = telemetry::kNoSpan;
      } else {
        // Stage ran without a stage_begin(): record it retroactively so
        // the trace still covers every StageTiming entry.
        tracer_->record_span(stage, "stage", root_span_, -1, last_mark_, now,
                             stage_wall_start_, wall_now);
      }
    }
    stage_wall_start_ = wall_now;
    metrics_
        ->histogram("ids_engine_stage_seconds",
                    telemetry::latency_seconds_buckets(), {{"stage", stage}})
        ->observe(seconds);
    // Resource accounting: modeled-vs-wall per stage, and the
    // SolutionTable high-water mark sampled at every barrier.
    result_.account.stages.push_back({stage, seconds, wall_seconds});
    std::uint64_t solution_bytes = 0;
    for (const auto& t : parts_) {
      solution_bytes +=
          static_cast<std::uint64_t>(t.num_rows() * t.row_bytes());
    }
    peak_solution_bytes_ = std::max(peak_solution_bytes_, solution_bytes);
    result_.stages.push_back({std::move(stage), seconds});
    last_mark_ = now;
  }

  /// Seals result_.account at the end of run(): whole-query times, cache
  /// tier deltas over the query, and the ids_query_* instruments.
  void finish_account() {
    telemetry::QueryResourceAccount& acct = result_.account;
    acct.modeled_seconds = sim::to_seconds(last_mark_);
    acct.wall_seconds =
        static_cast<double>(telemetry::Tracer::wall_now_ns() -
                            query_wall_start_) *
        1e-9;
    acct.rows_partitioned = rows_partitioned_;
    acct.udf_invocations = static_cast<std::uint64_t>(result_.rows_invoked);
    acct.peak_solution_bytes = peak_solution_bytes_;
    acct.cache_misses = static_cast<std::uint64_t>(result_.cache_misses);
    if (opts_.cache != nullptr) {
      const cache::CacheStats d =
          opts_.cache->stats().since(cache_query_baseline_);
      acct.cache_bytes_written = d.bytes_written;
      acct.cache_misses = d.misses;
      auto tier = [&acct](const char* name, std::uint64_t bytes,
                          std::uint64_t hits) {
        if (bytes == 0 && hits == 0) return;  // only tiers that served
        acct.tiers.push_back({name, bytes, hits});
      };
      tier("local_dram", d.read_bytes_local_dram, d.hits_local_dram);
      tier("local_ssd", d.read_bytes_local_ssd, d.hits_local_ssd);
      tier("remote_dram", d.read_bytes_remote_dram, d.hits_remote_dram);
      tier("remote_ssd", d.read_bytes_remote_ssd, d.hits_remote_ssd);
      tier("backing", d.read_bytes_backing, d.hits_backing);
    }
    metrics_->counter("ids_query_rows_gathered_total")
        ->inc(acct.rows_gathered);
    metrics_->counter("ids_query_rows_partitioned_total")
        ->inc(acct.rows_partitioned);
    metrics_->counter("ids_query_udf_invocations_total")
        ->inc(acct.udf_invocations);
    metrics_->gauge("ids_query_peak_solution_bytes")
        ->set(static_cast<double>(acct.peak_solution_bytes));
    metrics_
        ->histogram("ids_query_modeled_seconds",
                    telemetry::latency_seconds_buckets())
        ->observe(acct.modeled_seconds);
    metrics_
        ->histogram("ids_query_wall_seconds",
                    telemetry::latency_seconds_buckets())
        ->observe(acct.wall_seconds);
  }

  /// Wall-clock sample for a per-rank span start; 0 when tracing is off
  /// (rank_span is a no-op then, so the value is never read).
  std::uint64_t rank_wall_start() const {
    return tracer_ != nullptr ? telemetry::Tracer::wall_now_ns() : 0;
  }

  /// Records a completed per-rank operator span [v0, rank-clock-now] on
  /// rank r's timeline, parented to the current stage span. Returns the
  /// span id so the caller can attach attrs (kNoSpan when tracing is off).
  /// Thread-safe: rank lambdas call this concurrently.
  telemetry::SpanId rank_span(std::string_view name, int r, sim::Nanos v0,
                              std::uint64_t w0) {
    if (tracer_ == nullptr) return telemetry::kNoSpan;
    auto ru = static_cast<std::size_t>(r);
    return tracer_->record_span(name, "rank", stage_span_, r, v0,
                                clocks_.at(ru).now(), w0,
                                telemetry::Tracer::wall_now_ns());
  }

  std::size_t total_rows() const {
    std::size_t n = 0;
    for (const auto& t : parts_) n += t.num_rows();
    return n;
  }

  bool has_schema() const { return !parts_.empty(); }

  bool schema_has_var(const std::string& var) const {
    return has_schema() && parts_[0].id_var_index(var) >= 0;
  }

  void init_parts(const SolutionTable& prototype) {
    parts_.assign(static_cast<std::size_t>(p_), prototype.empty_like());
  }

  // ---- Row movement ------------------------------------------------------

  /// Moves every row to the rank returned by `dst_of`, charging the
  /// alpha-beta fabric model and synchronizing clocks (one alltoallv).
  /// Batch kernel: destinations are computed into a flat array, partitioned
  /// into per-destination index lists, and moved with one columnar gather
  /// per (src, dst) pair instead of one schema-walk per row.
  void shuffle_rows(
      const std::function<int(const SolutionTable&, std::size_t)>& dst_of) {
    if (!has_schema()) return;
    std::vector<SolutionTable> out;
    out.reserve(static_cast<std::size_t>(p_));
    for (int r = 0; r < p_; ++r) out.push_back(parts_[0].empty_like());

    std::vector<runtime::TrafficSummary> traffic(static_cast<std::size_t>(p_));
    const std::size_t row_bytes = parts_[0].row_bytes();

    std::vector<int> dsts;
    for (int src = 0; src < p_; ++src) {
      auto& table = parts_[static_cast<std::size_t>(src)];
      const std::size_t n = table.num_rows();
      dsts.resize(n);
      for (std::size_t row = 0; row < n; ++row) dsts[row] = dst_of(table, row);
      auto lists = SolutionTable::partition_rows(dsts, p_);

      auto& ts = traffic[static_cast<std::size_t>(src)];
      for (int dst = 0; dst < p_; ++dst) {
        const auto& rows = lists[static_cast<std::size_t>(dst)];
        if (rows.empty()) continue;
        out[static_cast<std::size_t>(dst)].append_rows_from(table, rows);
        if (dst == src) continue;
        rows_partitioned_ += rows.size();
        const std::uint64_t bytes = row_bytes * rows.size();
        auto& td = traffic[static_cast<std::size_t>(dst)];
        if (opts_.topology.same_node(src, dst)) {
          ts.intra_sent += bytes;
          td.intra_recv += bytes;
        } else {
          ts.inter_sent += bytes;
          td.inter_recv += bytes;
        }
        ++ts.messages;
      }
      table.clear();
    }
    for (int r = 0; r < p_; ++r) {
      runtime::charge_traffic(clocks_.at(static_cast<std::size_t>(r)),
                              opts_.topology,
                              traffic[static_cast<std::size_t>(r)]);
    }
    parts_ = std::move(out);
    clocks_.barrier();
  }

  /// Redistributes rows so rank r ends with targets[r] rows, moving as few
  /// rows as possible (surplus tails flow to deficit ranks).
  void redistribute_to_targets(const std::vector<std::size_t>& targets) {
    if (!has_schema()) return;
    const std::size_t row_bytes = parts_[0].row_bytes();
    std::vector<runtime::TrafficSummary> traffic(static_cast<std::size_t>(p_));

    struct Deficit {
      int rank;
      std::size_t need;
    };
    std::vector<Deficit> deficits;
    for (int r = 0; r < p_; ++r) {
      std::size_t have = parts_[static_cast<std::size_t>(r)].num_rows();
      std::size_t want = targets[static_cast<std::size_t>(r)];
      if (want > have) deficits.push_back({r, want - have});
    }
    std::size_t d = 0;
    for (int src = 0; src < p_ && d < deficits.size(); ++src) {
      auto& table = parts_[static_cast<std::size_t>(src)];
      std::size_t want = targets[static_cast<std::size_t>(src)];
      while (table.num_rows() > want && d < deficits.size()) {
        std::size_t surplus = table.num_rows() - want;
        std::size_t take = std::min(surplus, deficits[d].need);
        int dst = deficits[d].rank;
        // Move the tail rows [n - take, n) as one bulk column append.
        std::size_t n = table.num_rows();
        parts_[static_cast<std::size_t>(dst)].append_row_range_from(
            table, n - take, n);
        table.truncate(n - take);
        rows_partitioned_ += take;

        std::uint64_t bytes = row_bytes * take;
        auto& ts = traffic[static_cast<std::size_t>(src)];
        auto& td = traffic[static_cast<std::size_t>(dst)];
        ++ts.messages;
        if (opts_.topology.same_node(src, dst)) {
          ts.intra_sent += bytes;
          td.intra_recv += bytes;
        } else {
          ts.inter_sent += bytes;
          td.inter_recv += bytes;
        }
        deficits[d].need -= take;
        if (deficits[d].need == 0) ++d;
      }
    }
    for (int r = 0; r < p_; ++r) {
      runtime::charge_traffic(clocks_.at(static_cast<std::size_t>(r)),
                              opts_.topology,
                              traffic[static_cast<std::size_t>(r)]);
    }
    clocks_.barrier();
  }

  // ---- Graph pattern operators --------------------------------------------

  void apply_pattern(const TriplePattern& pat, bool first) {
    if (first || !has_schema()) {
      stage_begin("scan");
      scan_first(pat);
      mark("scan");
      return;
    }
    stage_begin("join");
    if (pat.s.is_var && schema_has_var(pat.s.var)) {
      extend_subject_bound(pat);
      mark("join");
      return;
    }
    // Shared non-subject variable -> hash join; none -> cartesian.
    bool shared = false;
    for (const auto& v : pattern_vars(pat)) {
      if (schema_has_var(v)) {
        shared = true;
        break;
      }
    }
    if (shared) {
      hash_join(pat);
    } else {
      IDS_WARN << "cartesian join for pattern with no shared variable";
      cartesian_join(pat);
    }
    mark("join");
  }

  /// Triple position (0 = s, 1 = p, 2 = o) where `var` first occurs in
  /// `pat`, or -1. Hoisted out of scan callbacks: kernels resolve variable
  /// positions once and then index triples by integer position.
  static int position_of(const TriplePattern& pat, const std::string& var) {
    if (pat.s.is_var && pat.s.var == var) return 0;
    if (pat.p.is_var && pat.p.var == var) return 1;
    if (pat.o.is_var && pat.o.var == var) return 2;
    return -1;
  }

  /// Scans shard `r` for `pat`, appending each match's variable bindings to
  /// `out` (schema must be pattern_vars(pat)); returns the match count.
  /// Column pointers and positions are hoisted so the per-triple work is
  /// nv integer stores.
  std::size_t scan_pattern_into(int r, const TriplePattern& pat,
                                SolutionTable* out) {
    const auto& vars = out->id_vars();
    const std::size_t nv = vars.size();
    IDS_CHECK(nv <= 3 && out->num_vars().empty());
    int pos[3] = {0, 0, 0};
    std::vector<TermId>* cols[3] = {nullptr, nullptr, nullptr};
    for (std::size_t k = 0; k < nv; ++k) {
      pos[k] = position_of(pat, vars[k]);
      IDS_CHECK(pos[k] >= 0) << "pattern lacks variable " << vars[k];
      cols[k] = &out->id_col_mut(static_cast<int>(k));
    }
    std::size_t matches = 0;
    triples_->shard(r).scan(pat, [&](const graph::Triple& t) {
      const TermId v[3] = {t.s, t.p, t.o};
      for (std::size_t k = 0; k < nv; ++k) cols[k]->push_back(v[pos[k]]);
      ++matches;
    });
    return matches;
  }

  void scan_first(const TriplePattern& pat) {
    charge_operator_overhead();
    SolutionTable prototype{pattern_vars(pat)};
    init_parts(prototype);
    runtime::for_each_rank(p_, "rank.scan", [&](int r) {
      sim::Nanos v0 = clocks_.at(static_cast<std::size_t>(r)).now();
      std::uint64_t w0 = rank_wall_start();
      std::size_t matches =
          scan_pattern_into(r, pat, &parts_[static_cast<std::size_t>(r)]);
      charge_graph_op(r, opts_.costs.triple_scan_cost(matches + 64));
      telemetry::SpanId span = rank_span("scan", r, v0, w0);
      if (span != telemetry::kNoSpan) {
        tracer_->add_attr(span, "matches",
                          static_cast<std::uint64_t>(matches));
      }
    });
  }

  void extend_subject_bound(const TriplePattern& pat) {
    charge_operator_overhead();
    int svar = parts_[0].id_var_index(pat.s.var);
    IDS_CHECK(svar >= 0);
    // Rows travel to the shard owning their subject value.
    shuffle_rows([this, svar](const SolutionTable& t, std::size_t row) {
      return triples_->shard_of_subject(t.id_at(row, svar));
    });

    // New schema: old id vars + pattern vars not yet bound.
    std::vector<std::string> new_vars;
    {
      std::vector<std::string> pv = pattern_vars(pat);
      for (const auto& v : pv) {
        if (!schema_has_var(v)) new_vars.push_back(v);
      }
    }
    std::vector<std::string> schema = parts_[0].id_vars();
    schema.insert(schema.end(), new_vars.begin(), new_vars.end());
    SolutionTable prototype{schema, parts_[0].num_vars()};
    const std::size_t old_ids = parts_[0].id_vars().size();

    // Hoisted per-row binding plan: the solution column feeding each
    // pattern position (-1 = stays as written), and the triple position
    // feeding each new output column.
    int bind_col[3] = {-1, -1, -1};
    if (pat.s.is_var) bind_col[0] = parts_[0].id_var_index(pat.s.var);
    if (pat.p.is_var) bind_col[1] = parts_[0].id_var_index(pat.p.var);
    if (pat.o.is_var) bind_col[2] = parts_[0].id_var_index(pat.o.var);
    std::vector<int> new_pos;
    new_pos.reserve(new_vars.size());
    for (const auto& v : new_vars) new_pos.push_back(position_of(pat, v));

    std::vector<SolutionTable> out(static_cast<std::size_t>(p_),
                                   prototype.empty_like());
    runtime::for_each_rank(p_, "rank.join_extend", [&](int r) {
      auto ru = static_cast<std::size_t>(r);
      sim::Nanos v0 = clocks_.at(ru).now();
      std::uint64_t w0 = rank_wall_start();
      const auto& in = parts_[ru];
      auto& dst = out[ru];

      // The concretized pattern is built once; per row only the bound
      // constants are refreshed (no string churn in the loop).
      TriplePattern bound = pat;
      graph::PatternTerm* terms[3] = {&bound.s, &bound.p, &bound.o};
      for (int i = 0; i < 3; ++i) {
        if (bind_col[i] >= 0) *terms[i] = graph::PatternTerm::Const(0);
      }
      const std::size_t nn = new_vars.size();
      std::vector<TermId>* new_cols[3] = {nullptr, nullptr, nullptr};
      for (std::size_t k = 0; k < nn; ++k) {
        new_cols[k] = &dst.id_col_mut(static_cast<int>(old_ids + k));
      }

      std::vector<RowIndex> src_rows;
      std::size_t scanned = 0;
      const std::size_t n = in.num_rows();
      for (std::size_t row = 0; row < n; ++row) {
        for (int i = 0; i < 3; ++i) {
          if (bind_col[i] >= 0) {
            terms[i]->constant = in.id_at(row, bind_col[i]);
          }
        }
        triples_->shard(r).scan(bound, [&](const graph::Triple& t) {
          src_rows.push_back(static_cast<RowIndex>(row));
          const TermId v[3] = {t.s, t.p, t.o};
          for (std::size_t k = 0; k < nn; ++k) {
            new_cols[k]->push_back(v[new_pos[k]]);
          }
          ++scanned;
        });
        scanned += 4;  // index probe overhead
      }
      // New-binding columns were written inline; gather the carried-over
      // columns in one pass per column.
      dst.append_prefix_from(in, src_rows);
      charge_graph_op(r, opts_.costs.triple_scan_cost(scanned + 64));
      telemetry::SpanId span = rank_span("join:extend", r, v0, w0);
      if (span != telemetry::kNoSpan) {
        tracer_->add_attr(span, "scanned",
                          static_cast<std::uint64_t>(scanned));
      }
    });
    parts_ = std::move(out);
    clocks_.barrier();
  }

  void hash_join(const TriplePattern& pat) {
    charge_operator_overhead();
    // Join variable: the first pattern var present in the schema.
    std::string join_var;
    for (const auto& v : pattern_vars(pat)) {
      if (schema_has_var(v)) {
        join_var = v;
        break;
      }
    }
    IDS_CHECK(!join_var.empty());

    // Build side: local pattern matches on every rank.
    std::vector<SolutionTable> build(static_cast<std::size_t>(p_),
                                     SolutionTable{pattern_vars(pat)});
    runtime::for_each_rank(p_, "rank.join_build", [&](int r) {
      sim::Nanos v0 = clocks_.at(static_cast<std::size_t>(r)).now();
      std::uint64_t w0 = rank_wall_start();
      std::size_t matches =
          scan_pattern_into(r, pat, &build[static_cast<std::size_t>(r)]);
      charge_graph_op(r, opts_.costs.triple_scan_cost(matches + 64));
      telemetry::SpanId span = rank_span("join:build", r, v0, w0);
      if (span != telemetry::kNoSpan) {
        tracer_->add_attr(span, "matches",
                          static_cast<std::uint64_t>(matches));
      }
    });

    // Shuffle both sides by the join key.
    int probe_idx = parts_[0].id_var_index(join_var);
    shuffle_rows([this, probe_idx](const SolutionTable& t, std::size_t row) {
      return static_cast<int>(mix64(t.id_at(row, probe_idx)) %
                              static_cast<std::uint64_t>(p_));
    });
    {
      // Shuffle the build side with the same partitioning: per-destination
      // index lists, then one gather per (src, dst) pair.
      int bidx = build[0].id_var_index(join_var);
      std::vector<SolutionTable> shuffled(static_cast<std::size_t>(p_),
                                          build[0].empty_like());
      std::vector<int> dsts;
      for (int src = 0; src < p_; ++src) {
        auto& t = build[static_cast<std::size_t>(src)];
        const auto& keys = t.id_col(bidx);
        dsts.resize(keys.size());
        for (std::size_t row = 0; row < keys.size(); ++row) {
          dsts[row] = static_cast<int>(mix64(keys[row]) %
                                       static_cast<std::uint64_t>(p_));
        }
        auto lists = SolutionTable::partition_rows(dsts, p_);
        for (int dst = 0; dst < p_; ++dst) {
          const auto& rows = lists[static_cast<std::size_t>(dst)];
          if (rows.empty()) continue;
          shuffled[static_cast<std::size_t>(dst)].append_rows_from(t, rows);
        }
      }
      build = std::move(shuffled);
      // Communication for the build side: charged as one tree collective
      // of the average build rows (cheap relative to the probe shuffle).
      std::size_t build_rows = 0;
      for (const auto& t : build) build_rows += t.num_rows();
      runtime::charge_tree_collective(
          clocks_, opts_.topology,
          build_rows * build[0].row_bytes() /
              static_cast<std::size_t>(p_));
    }

    // Output schema: probe vars + new pattern vars.
    std::vector<std::string> new_vars;
    for (const auto& v : pattern_vars(pat)) {
      if (!schema_has_var(v)) new_vars.push_back(v);
    }
    std::vector<std::string> schema = parts_[0].id_vars();
    schema.insert(schema.end(), new_vars.begin(), new_vars.end());
    SolutionTable prototype{schema, parts_[0].num_vars()};
    std::vector<SolutionTable> out(static_cast<std::size_t>(p_),
                                   prototype.empty_like());

    // Shared pattern vars beyond the join key must match too.
    std::vector<std::string> check_vars;
    for (const auto& v : pattern_vars(pat)) {
      if (v != join_var && schema_has_var(v)) check_vars.push_back(v);
    }

    runtime::for_each_rank(p_, "rank.join_probe", [&](int r) {
      auto ru = static_cast<std::size_t>(r);
      sim::Nanos v0 = clocks_.at(ru).now();
      std::uint64_t w0 = rank_wall_start();
      const auto& bt = build[ru];
      const auto& probe = parts_[ru];
      auto& dst = out[ru];
      int b_join = bt.id_var_index(join_var);

      // Flat grouped index over the build keys: one contiguous probe per
      // key instead of node-chasing an unordered_multimap.
      FlatGroupIndex index(bt.id_col(b_join));

      // Hoisted column plans: (build col, probe col) pairs for the extra
      // equality checks and build columns feeding each new output column.
      struct CheckCols {
        const std::vector<TermId>* b;
        const std::vector<TermId>* p;
      };
      std::vector<CheckCols> checks;
      checks.reserve(check_vars.size());
      for (const auto& cv : check_vars) {
        checks.push_back({&bt.id_col(bt.id_var_index(cv)),
                          &probe.id_col(probe.id_var_index(cv))});
      }
      const std::size_t old_ids = probe.id_vars().size();
      const std::size_t nn = new_vars.size();
      std::vector<const std::vector<TermId>*> new_src;
      std::vector<std::vector<TermId>*> new_dst;
      new_src.reserve(nn);
      new_dst.reserve(nn);
      for (std::size_t k = 0; k < nn; ++k) {
        new_src.push_back(&bt.id_col(bt.id_var_index(new_vars[k])));
        new_dst.push_back(&dst.id_col_mut(static_cast<int>(old_ids + k)));
      }

      const auto& probe_keys = probe.id_col(probe_idx);
      std::vector<RowIndex> src_rows;
      std::size_t produced = 0;
      for (std::size_t row = 0; row < probe_keys.size(); ++row) {
        // Reverse group order: the previous build index prepended equal
        // keys, so its equal_range enumerated build rows newest-first.
        // Downstream operators that move row *tails* (rebalance) are
        // placement-sensitive, so the emission order is part of the
        // modeled-result contract and must not change.
        auto group = index.probe(probe_keys[row]);
        for (std::size_t gi = group.size(); gi-- > 0;) {
          const std::uint32_t brow = group[gi];
          bool ok = true;
          for (const auto& ch : checks) {
            if ((*ch.b)[brow] != (*ch.p)[row]) {
              ok = false;
              break;
            }
          }
          if (!ok) continue;
          src_rows.push_back(static_cast<RowIndex>(row));
          for (std::size_t k = 0; k < nn; ++k) {
            new_dst[k]->push_back((*new_src[k])[brow]);
          }
          ++produced;
        }
      }
      // New-binding columns were written inline; gather the carried-over
      // probe columns in one pass per column.
      dst.append_prefix_from(probe, src_rows);
      charge_graph_op(r, opts_.costs.join_cost(bt.num_rows() +
                                               probe.num_rows() + produced));
      telemetry::SpanId span = rank_span("join:probe", r, v0, w0);
      if (span != telemetry::kNoSpan) {
        tracer_->add_attr(span, "produced",
                          static_cast<std::uint64_t>(produced));
      }
    });
    parts_ = std::move(out);
    clocks_.barrier();
  }

  void cartesian_join(const TriplePattern& pat) {
    // Gather all pattern matches everywhere (assumed small), then cross
    // with local rows.
    SolutionTable matches{pattern_vars(pat)};
    for (int r = 0; r < p_; ++r) scan_pattern_into(r, pat, &matches);
    runtime::charge_tree_collective(clocks_, opts_.topology,
                                    matches.num_rows() * matches.row_bytes());

    std::vector<std::string> schema = parts_[0].id_vars();
    for (const auto& v : matches.id_vars()) schema.push_back(v);
    SolutionTable prototype{schema, parts_[0].num_vars()};
    std::vector<SolutionTable> out(static_cast<std::size_t>(p_),
                                   prototype.empty_like());
    runtime::for_each_rank(p_, "rank.join_cartesian", [&](int r) {
      auto ru = static_cast<std::size_t>(r);
      sim::Nanos v0 = clocks_.at(ru).now();
      std::uint64_t w0 = rank_wall_start();
      const auto& in = parts_[ru];
      auto& dst = out[ru];
      const std::size_t n = in.num_rows();
      const std::size_t m = matches.num_rows();
      // Row-major (row, mrow) cross product, one column at a time: left
      // columns repeat each value m times, match columns tile whole-column
      // n times, numeric columns repeat like left columns.
      const std::size_t old_ids = in.id_vars().size();
      for (std::size_t c = 0; c < old_ids; ++c) {
        const auto& src = in.id_col(static_cast<int>(c));
        auto& col = dst.id_col_mut(static_cast<int>(c));
        col.reserve(n * m);
        for (std::size_t row = 0; row < n; ++row) {
          col.insert(col.end(), m, src[row]);
        }
      }
      for (std::size_t c = 0; c < matches.id_vars().size(); ++c) {
        const auto& src = matches.id_col(static_cast<int>(c));
        auto& col = dst.id_col_mut(static_cast<int>(old_ids + c));
        col.reserve(n * m);
        for (std::size_t row = 0; row < n; ++row) {
          col.insert(col.end(), src.begin(), src.end());
        }
      }
      for (std::size_t c = 0; c < in.num_vars().size(); ++c) {
        const auto& src = in.num_col(static_cast<int>(c));
        auto& col = dst.num_col_mut(static_cast<int>(c));
        col.reserve(n * m);
        for (std::size_t row = 0; row < n; ++row) {
          col.insert(col.end(), m, src[row]);
        }
      }
      charge_graph_op(r, opts_.costs.join_cost(n * m));
      telemetry::SpanId span = rank_span("join:cartesian", r, v0, w0);
      if (span != telemetry::kNoSpan) {
        tracer_->add_attr(span, "produced",
                          static_cast<std::uint64_t>(n * m));
      }
    });
    parts_ = std::move(out);
    clocks_.barrier();
  }

  // ---- Keyword / vector operators ----------------------------------------

  void apply_keyword(const KeywordClause& kc) {
    if (!keywords_) {
      IDS_WARN << "keyword clause with no inverted index; skipping";
      return;
    }
    stage_begin("keyword");
    std::vector<TermId> hits = kc.conjunctive
                                   ? keywords_->search_and(kc.tokens)
                                   : keywords_->search_or(kc.tokens);
    // Charge: each rank scans its slice of the posting lists.
    std::size_t posting_work = 0;
    for (const auto& t : kc.tokens) posting_work += keywords_->posting_size(t);
    for (int r = 0; r < p_; ++r) {
      charge_compute(r, opts_.costs.triple_scan_cost(
                            posting_work / static_cast<std::size_t>(p_) + 16));
    }
    semi_join(kc.var, hits);
    mark("keyword");
  }

  void apply_vector(const VectorClause& vc) {
    if (!vectors_) {
      IDS_WARN << "vector clause with no vector store; skipping";
      return;
    }
    stage_begin("vector");
    // Per-shard top-k (exact scan, or IVF probing when the clause asks
    // for approximate search), then a global merge (allgather of k hits).
    std::vector<std::vector<store::VectorHit>> shard_hits(
        static_cast<std::size_t>(p_));
    runtime::for_each_rank(p_, "rank.vector", [&](int r) {
      auto ru = static_cast<std::size_t>(r);
      sim::Nanos v0 = clocks_.at(ru).now();
      std::uint64_t w0 = rank_wall_start();
      if (vc.ivf_nprobe > 0) {
        store::IvfIndex::Params params;
        params.num_clusters = vc.ivf_clusters;
        store::IvfIndex index(*vectors_, r, params);
        shard_hits[ru] = index.topk(vc.query, vc.k, vc.metric, vc.ivf_nprobe);
        charge_compute(r, opts_.costs.vector_scan_cost(
                              index.work_units(vc.ivf_nprobe)));
      } else {
        shard_hits[ru] = vectors_->topk_shard(r, vc.query, vc.k, vc.metric);
        charge_compute(
            r, opts_.costs.vector_scan_cost(vectors_->scan_work_units(r)));
      }
      telemetry::SpanId span = rank_span("vector:topk", r, v0, w0);
      if (span != telemetry::kNoSpan) {
        tracer_->add_attr(span, "hits",
                          static_cast<std::uint64_t>(shard_hits[ru].size()));
      }
    });
    runtime::charge_tree_collective(
        clocks_, opts_.topology,
        vc.k * (sizeof(TermId) + sizeof(float)));

    std::vector<store::VectorHit> all;
    for (auto& h : shard_hits) all.insert(all.end(), h.begin(), h.end());
    std::sort(all.begin(), all.end(),
              [](const store::VectorHit& a, const store::VectorHit& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.id < b.id;
              });
    if (all.size() > vc.k) all.resize(vc.k);
    std::vector<TermId> hits;
    hits.reserve(all.size());
    for (const auto& h : all) hits.push_back(h.id);
    std::sort(hits.begin(), hits.end());
    semi_join(vc.var, hits);
    mark("vector");
  }

  /// Restricts `var` to the sorted id set, or seeds solutions from the set
  /// when no rows exist yet.
  void semi_join(const std::string& var, const std::vector<TermId>& ids) {
    if (!has_schema()) {
      SolutionTable prototype{{var}};
      init_parts(prototype);
      for (TermId id : ids) {
        int dst = triples_->shard_of_subject(id);
        parts_[static_cast<std::size_t>(dst)].append_row({&id, 1});
      }
      return;
    }
    int idx = parts_[0].id_var_index(var);
    if (idx < 0) {
      IDS_WARN << "semi-join variable ?" << var << " not bound; skipping";
      return;
    }
    runtime::for_each_rank(p_, "rank.semi_join", [&](int r) {
      sim::Nanos v0 = clocks_.at(static_cast<std::size_t>(r)).now();
      std::uint64_t w0 = rank_wall_start();
      auto& t = parts_[static_cast<std::size_t>(r)];
      const auto& col = t.id_col(idx);
      std::vector<char> keep(col.size(), 0);
      for (std::size_t row = 0; row < col.size(); ++row) {
        keep[row] =
            std::binary_search(ids.begin(), ids.end(), col[row]) ? 1 : 0;
      }
      charge_graph_op(r, opts_.costs.join_cost(t.num_rows()));
      std::size_t rows_in = t.num_rows();
      t.filter_rows(keep);
      telemetry::SpanId span = rank_span("semi_join", r, v0, w0);
      if (span != telemetry::kNoSpan) {
        tracer_->add_attr(span, "rows_in",
                          static_cast<std::uint64_t>(rows_in));
        tracer_->add_attr(span, "rows_kept",
                          static_cast<std::uint64_t>(t.num_rows()));
      }
    });
    clocks_.barrier();
  }

  // ---- FILTER stage --------------------------------------------------------

  void apply_filters(const Query& query) {
    if (query.filters.empty() || !has_schema()) return;

    std::vector<expr::Conjunct> conjuncts;
    for (const auto& f : query.filters) {
      auto flat = expr::flatten_conjuncts(f);
      conjuncts.insert(conjuncts.end(), flat.begin(), flat.end());
    }

    // Per-rank conjunct orders (§2.4.3: per-rank reordering).
    std::vector<std::vector<std::size_t>> orders(
        static_cast<std::size_t>(p_));
    for (int r = 0; r < p_; ++r) {
      if (opts_.reorder_filters) {
        orders[static_cast<std::size_t>(r)] =
            order_conjuncts(conjuncts, r, *profiler_);
      } else {
        orders[static_cast<std::size_t>(r)].resize(conjuncts.size());
        std::iota(orders[static_cast<std::size_t>(r)].begin(),
                  orders[static_cast<std::size_t>(r)].end(), 0);
      }
    }

    // Solution re-balancing (§2.4.2) driven by per-rank single-solution
    // time estimates.
    if (opts_.rebalance != RebalancePolicy::kNone) {
      stage_begin("rebalance");
      std::vector<std::size_t> counts(static_cast<std::size_t>(p_));
      std::vector<double> throughput(static_cast<std::size_t>(p_), 0.0);
      for (int r = 0; r < p_; ++r) {
        auto ru = static_cast<std::size_t>(r);
        counts[ru] = parts_[ru].num_rows();
        double est = estimate_solution_seconds(conjuncts, orders[ru], r,
                                               *profiler_);
        if (est > 0.0) throughput[ru] = 1.0 / est;
      }
      // Ranks exchange their estimates (one small allreduce).
      runtime::charge_tree_collective(clocks_, opts_.topology, 8);
      RebalanceDecision decision =
          decide_rebalance(opts_.rebalance, counts, throughput);
      if (decision.rebalance) {
        redistribute_to_targets(decision.targets);
        result_.used_throughput_rebalance |= decision.used_throughput;
        metrics_
            ->counter("ids_engine_rebalance_total",
                      {{"policy", decision.used_throughput ? "throughput"
                                                           : "count"}})
            ->inc();
      }
      if (tracer_ != nullptr) {
        tracer_->add_attr(stage_span_, "policy",
                          std::string_view(opts_.rebalance ==
                                                   RebalancePolicy::kThroughput
                                               ? "throughput"
                                               : "count"));
        tracer_->add_attr(stage_span_, "triggered",
                          static_cast<std::uint64_t>(decision.rebalance));
        tracer_->add_attr(
            stage_span_, "throughput_based",
            static_cast<std::uint64_t>(decision.used_throughput));
        tracer_->add_attr(stage_span_, "speed_ratio", decision.speed_ratio);
      }
      mark("rebalance");
    }

    // Per-conjunct logical-call multipliers: a conjunct's evaluations are
    // charged as `row_multiplier` logical evaluations unless one of its
    // UDFs has an explicit override (scale model; see EngineOptions).
    std::vector<double> conj_multiplier(conjuncts.size(),
                                        opts_.row_multiplier);
    for (std::size_t ci = 0; ci < conjuncts.size(); ++ci) {
      for (const auto& name : conjuncts[ci].udfs) {
        auto it = opts_.udf_call_multiplier.find(name);
        if (it != opts_.udf_call_multiplier.end()) {
          conj_multiplier[ci] = it->second;
        }
      }
    }

    // Evaluate the chain; the first falsy conjunct rejects the row and is
    // attributed to its last UDF (the rejection statistic of the paper's
    // profiling section).
    stage_begin("filter");
    if (tracer_ != nullptr) {
      tracer_->add_attr(stage_span_, "reorder",
                        std::string_view(opts_.reorder_filters ? "on"
                                                               : "off"));
      std::set<std::vector<std::size_t>> distinct(orders.begin(),
                                                  orders.end());
      tracer_->add_attr(stage_span_, "distinct_orders",
                        static_cast<std::uint64_t>(distinct.size()));
      std::string rank0;
      for (std::size_t ci : orders[0]) {
        if (!rank0.empty()) rank0 += ',';
        rank0 += std::to_string(ci);
      }
      tracer_->add_attr(stage_span_, "rank0_order", rank0);
    }
    charge_operator_overhead();
    runtime::for_each_rank(p_, "rank.filter", [&](int r) {
      auto ru = static_cast<std::size_t>(r);
      sim::Nanos v0 = clocks_.at(ru).now();
      std::uint64_t w0 = rank_wall_start();
      auto& t = parts_[ru];
      std::vector<char> keep(t.num_rows(), 1);
      double rank_cost = 0.0;  // nanoseconds, multiplier-weighted
      // One context per rank; only the row cursor moves in the loop.
      expr::EvalContext ctx;
      ctx.row = {&t, 0};
      ctx.registry = registry_;
      ctx.profiler = profiler_;
      ctx.udf_ctx = {r, features_, vectors_, &rank_rngs_[ru]};
      ctx.speed_factor = speed(r);
      for (std::size_t row = 0; row < t.num_rows(); ++row) {
        ctx.row.row = row;
        ctx.cost = 0;
        for (std::size_t ci : orders[ru]) {
          sim::Nanos before = ctx.cost;
          expr::Value v = expr::eval(*conjuncts[ci].expr, ctx);
          rank_cost += static_cast<double>(ctx.cost - before) *
                       conj_multiplier[ci];
          if (!expr::truthy(v)) {
            keep[row] = 0;
            if (!conjuncts[ci].udfs.empty()) {
              profiler_->record_reject(r, conjuncts[ci].udfs.back());
            }
            break;
          }
        }
      }
      clocks_.at(ru).advance(static_cast<sim::Nanos>(rank_cost));
      std::size_t rows_in = t.num_rows();
      t.filter_rows(keep);
      telemetry::SpanId span = rank_span("filter", r, v0, w0);
      if (span != telemetry::kNoSpan) {
        tracer_->add_attr(span, "rows_in",
                          static_cast<std::uint64_t>(rows_in));
        tracer_->add_attr(span, "rows_kept",
                          static_cast<std::uint64_t>(t.num_rows()));
      }
    });
    mark("filter");
  }

  // ---- DISTINCT / INVOKE ---------------------------------------------------

  void apply_distinct(const std::string& var) {
    if (!has_schema()) return;
    charge_operator_overhead();
    int idx = parts_[0].id_var_index(var);
    if (idx < 0) {
      IDS_WARN << "distinct variable ?" << var << " not bound; skipping";
      return;
    }
    stage_begin("distinct");
    // Co-locate equal values, then keep the first row of each value.
    shuffle_rows([this, idx](const SolutionTable& t, std::size_t row) {
      return static_cast<int>(mix64(t.id_at(row, idx)) %
                              static_cast<std::uint64_t>(p_));
    });
    runtime::for_each_rank(p_, "rank.distinct", [&](int r) {
      sim::Nanos v0 = clocks_.at(static_cast<std::size_t>(r)).now();
      std::uint64_t w0 = rank_wall_start();
      auto& t = parts_[static_cast<std::size_t>(r)];
      const auto& col = t.id_col(idx);
      FlatTermSet seen(col.size());
      std::vector<char> keep(col.size(), 0);
      for (std::size_t row = 0; row < col.size(); ++row) {
        keep[row] = seen.insert(col[row]) ? 1 : 0;
      }
      charge_graph_op(r, opts_.costs.join_cost(t.num_rows()));
      std::size_t rows_in = t.num_rows();
      t.filter_rows(keep);
      telemetry::SpanId span = rank_span("distinct", r, v0, w0);
      if (span != telemetry::kNoSpan) {
        tracer_->add_attr(span, "rows_in",
                          static_cast<std::uint64_t>(rows_in));
        tracer_->add_attr(span, "rows_kept",
                          static_cast<std::uint64_t>(t.num_rows()));
      }
    });
    // Spread the survivors evenly: the upcoming INVOKE is expensive and
    // hash placement can clump a small distinct set onto few ranks ("IDS
    // commonly re-balances solutions across ranks between operations").
    redistribute_to_targets(count_based_targets(total_rows(), p_));
    mark("distinct");
  }

  /// Cache payloads store the scalar result first so the engine can parse
  /// it back without re-running the model; the padding models the full
  /// artifact (e.g. a complete Vina output file).
  static std::string make_payload(double value, std::size_t total_bytes) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", value);  // exact round trip
    std::string payload = buf;
    payload += ';';
    if (payload.size() < total_bytes) {
      payload.resize(total_bytes, '#');
    }
    return payload;
  }

  std::string render_cache_key(const InvokeClause& inv,
                               const std::vector<expr::Value>& args) const {
    std::string key = inv.cache_prefix;
    for (const auto& a : args) {
      key += '/';
      if (const auto* e = std::get_if<expr::Entity>(&a)) {
        key += triples_->dict().name(e->id);  // name-based, instance-portable
      } else {
        key += expr::to_string(a);
      }
    }
    return key;
  }

  int cache_node_of_rank(int r) const {
    IDS_CHECK(opts_.cache != nullptr);
    return opts_.topology.node_of_rank(r) % opts_.cache->config().num_nodes;
  }

  void apply_invoke(const InvokeClause& inv) {
    if (!has_schema()) return;
    const udf::UdfInfo* info = registry_->find(inv.udf);
    if (!info) {
      IDS_WARN << "INVOKE of unknown UDF " << inv.udf << "; skipping";
      return;
    }
    for (auto& t : parts_) t.add_num_var(inv.out_var);
    const bool cached = inv.use_cache && opts_.cache != nullptr;
    stage_begin("invoke:" + inv.udf);

    // Hits and misses are derived from the cache's own telemetry counters
    // (delta over this stage) — the exact numbers the Prometheus export
    // reports — instead of a parallel set of hand-maintained atomics.
    cache::CacheStats cache_before;
    if (cached) cache_before = opts_.cache->stats();

    std::atomic<std::size_t> invoked{0};

    runtime::for_each_rank(p_, "rank.invoke", [&](int r) {
      auto ru = static_cast<std::size_t>(r);
      telemetry::SpanId span =
          tracer_ == nullptr
              ? telemetry::kNoSpan
              : tracer_->begin_span("invoke", "rank", stage_span_, r,
                                    clocks_.at(ru).now());
      auto& t = parts_[ru];
      int out_col = t.num_var_index(inv.out_var);
      // One context and one argument buffer per rank; the row cursor and
      // per-row cost are reset in the loop.
      expr::EvalContext ctx;
      ctx.row = {&t, 0};
      ctx.registry = registry_;
      ctx.profiler = profiler_;
      ctx.udf_ctx = {r, features_, vectors_, &rank_rngs_[ru]};
      ctx.speed_factor = speed(r);
      std::vector<expr::Value> args;
      args.reserve(inv.args.size());
      for (std::size_t row = 0; row < t.num_rows(); ++row) {
        ctx.row.row = row;
        ctx.cost = 0;

        args.clear();
        for (const auto& a : inv.args) args.push_back(expr::eval(*a, ctx));
        // Argument-evaluation cost lands on the clock now so the per-call
        // spans below start at the right modeled time. Splitting the
        // row's single advance into several is exact (integer adds), and
        // the cache never reads the clock's current value, so the modeled
        // result is bit-identical to charging everything at row end.
        clocks_.at(ru).advance(ctx.cost);
        ctx.cost = 0;

        double value = 0.0;
        bool have = false;
        std::string key;
        if (cached) {
          key = render_cache_key(inv, args);
          sim::Nanos gv0 = clocks_.at(ru).now();
          std::uint64_t gw0 = rank_wall_start();
          auto payload = opts_.cache->get(clocks_.at(ru),
                                          cache_node_of_rank(r), key);
          if (span != telemetry::kNoSpan) {
            telemetry::SpanId call = tracer_->record_span(
                "cache.get", "cache", span, r, gv0, clocks_.at(ru).now(),
                gw0, telemetry::Tracer::wall_now_ns());
            tracer_->add_attr(call, "hit",
                              static_cast<std::uint64_t>(payload ? 1 : 0));
          }
          if (payload) {
            value = std::strtod(payload->c_str(), nullptr);
            have = true;
          }
        }
        if (!have) {
          // Execute the model (a cache miss falls back to re-running the
          // simulation, the paper's "last resort on a total miss").
          sim::Nanos xv0 = clocks_.at(ru).now();
          std::uint64_t xw0 = rank_wall_start();
          ctx.cost += registry_->charge_module_load(r, *info);
          const udf::UdfResult res = [&] {
            // Attribute model execution to the UDF by name; UdfInfo
            // outlives every query, so the pointer stays valid for the
            // profiler.
            telemetry::ProfileScope udf_scope(info->name.c_str());
            return info->fn(ctx.udf_ctx, args);
          }();
          auto scaled = static_cast<sim::Nanos>(
              static_cast<double>(res.modeled_cost) /
              (speed(r) > 0.0 ? speed(r) : 1.0));
          ctx.cost += scaled;
          profiler_->record_exec(r, info->name, scaled);
          double out = 0.0;
          expr::as_double(res.value, &out);
          value = out;
          invoked.fetch_add(1, std::memory_order_relaxed);
          clocks_.at(ru).advance(ctx.cost);
          ctx.cost = 0;
          if (span != telemetry::kNoSpan) {
            tracer_->record_span(info->name, "udf", span, r, xv0,
                                 clocks_.at(ru).now(), xw0,
                                 telemetry::Tracer::wall_now_ns());
          }
          if (cached) {
            sim::Nanos pv0 = clocks_.at(ru).now();
            std::uint64_t pw0 = rank_wall_start();
            opts_.cache->put(clocks_.at(ru), cache_node_of_rank(r), key,
                             make_payload(value, inv.cached_payload_bytes));
            if (span != telemetry::kNoSpan) {
              tracer_->record_span("cache.put", "cache", span, r, pv0,
                                   clocks_.at(ru).now(), pw0,
                                   telemetry::Tracer::wall_now_ns());
            }
          }
        }
        t.set_num(row, out_col, value);
        clocks_.at(ru).advance(ctx.cost);
      }
      if (tracer_ != nullptr) {
        tracer_->end_span(span, clocks_.at(ru).now());
      }
    });
    std::size_t stage_hits = 0;
    std::size_t stage_misses = 0;
    if (cached) {
      cache::CacheStats delta = opts_.cache->stats().since(cache_before);
      stage_hits = static_cast<std::size_t>(delta.total_hits());
      stage_misses = static_cast<std::size_t>(delta.misses);
    }
    result_.cache_hits += stage_hits;
    result_.cache_misses += stage_misses;
    result_.rows_invoked += invoked.load();

    // Shared-server queueing of the cache's (de)serialization service: a
    // single server processing every cache operation of this stage
    // back-to-back bounds the stage below by ops x service time (the
    // saturated busy period). Per-op latency was already charged by the
    // cache; this enforces the aggregate-throughput cap deterministically.
    if (cached) {
      double service = opts_.cache->config().serialization_service_seconds;
      if (service > 0.0) {
        std::uint64_t ops = stage_hits + stage_misses;  // get hit or put
        sim::Nanos floor =
            last_mark_ +
            sim::from_seconds(service * static_cast<double>(ops));
        for (std::size_t r = 0; r < clocks_.size(); ++r) {
          clocks_.at(r).raise_to(floor);
        }
      }
    }
    mark("invoke:" + inv.udf);
  }

  // ---- Final gather --------------------------------------------------------

  void gather_and_finish(const Query& query) {
    stage_begin("gather");
    SolutionTable merged =
        has_schema() ? parts_[0].empty_like() : SolutionTable{};
    std::size_t total_bytes = 0;
    for (const auto& t : parts_) {
      merged.append_table(t);
      total_bytes += t.num_rows() * t.row_bytes();
    }
    runtime::charge_tree_collective(clocks_, opts_.topology, total_bytes);
    result_.account.rows_gathered =
        static_cast<std::uint64_t>(merged.num_rows());
    mark("gather");

    // ORDER BY a numeric column.
    if (!query.order_by.empty()) {
      int col = merged.num_var_index(query.order_by);
      if (col >= 0) {
        std::vector<std::size_t> idx(merged.num_rows());
        std::iota(idx.begin(), idx.end(), 0);
        std::stable_sort(idx.begin(), idx.end(),
                         [&](std::size_t a, std::size_t b) {
                           double va = merged.num_at(a, col);
                           double vb = merged.num_at(b, col);
                           return query.order_descending ? va > vb : va < vb;
                         });
        merged = merged.take_rows(idx);
      }
    }
    if (query.limit > 0 && merged.num_rows() > query.limit) {
      merged.truncate(query.limit);
    }

    // SELECT projection (id variables; numeric columns always survive).
    // Columnar: each selected variable is one whole-column copy.
    if (!query.select.empty()) {
      SolutionTable projected{query.select, merged.num_vars()};
      const std::size_t n = merged.num_rows();
      for (std::size_t k = 0; k < query.select.size(); ++k) {
        int c = merged.id_var_index(query.select[k]);
        auto& col = projected.id_col_mut(static_cast<int>(k));
        if (c >= 0) {
          col = merged.id_col(c);
        } else {
          col.assign(n, graph::kInvalidTerm);
        }
      }
      for (std::size_t c = 0; c < merged.num_vars().size(); ++c) {
        projected.num_col_mut(static_cast<int>(c)) =
            merged.num_col(static_cast<int>(c));
      }
      merged = std::move(projected);
    }

    result_.solutions = std::move(merged);
    result_.total_seconds = sim::to_seconds(clocks_.max());
  }

  const EngineOptions& opts_;
  graph::TripleStore* triples_;
  store::FeatureStore* features_;
  store::InvertedIndex* keywords_;
  store::VectorStore* vectors_;
  udf::UdfRegistry* registry_;
  udf::UdfProfiler* profiler_;
  telemetry::Tracer* tracer_;        // nullptr = tracing off
  telemetry::MetricsRegistry* metrics_;
  telemetry::SpanId root_span_ = telemetry::kNoSpan;
  telemetry::SpanId stage_span_ = telemetry::kNoSpan;
  std::uint64_t stage_wall_start_ = 0;

  int p_;
  sim::ClockSet clocks_;
  std::vector<SolutionTable> parts_;
  std::vector<Rng> rank_rngs_;
  QueryResult result_;
  sim::Nanos last_mark_ = 0;

  // Per-query resource accounting (ISSUE 9). rows_partitioned_ is only
  // mutated from the serial exchange loops (shuffle_rows /
  // redistribute_to_targets run on the engine thread), so it needs no
  // synchronization.
  std::uint64_t query_wall_start_ = 0;
  std::size_t trace_base_ = 0;  // tracer_->size() at run() start
  cache::CacheStats cache_query_baseline_;
  std::uint64_t rows_partitioned_ = 0;
  std::uint64_t peak_solution_bytes_ = 0;
};

}  // namespace

IdsEngine::IdsEngine(EngineOptions options, graph::TripleStore* triples,
                     store::FeatureStore* features,
                     store::InvertedIndex* keywords,
                     store::VectorStore* vectors)
    : options_(std::move(options)),
      triples_(triples),
      features_(features),
      keywords_(keywords),
      vectors_(vectors),
      profiler_(options_.topology.num_ranks(),
                options_.metrics != nullptr
                    ? options_.metrics
                    : &telemetry::MetricsRegistry::global()) {
  IDS_CHECK(triples_->num_shards() == options_.topology.num_ranks())
      << "store sharding must match the rank count";
}

QueryResult IdsEngine::execute(const Query& query) {
  // Serve-phase gate: every store a query can read must be sealed by its
  // freeze method before execution, so nothing execute() reaches mutates
  // (the contract the phase rule family proves statically).
  IDS_CHECK(triples_->frozen())
      << "execute() before TripleStore::finalize()";
  IDS_CHECK(features_ == nullptr || features_->frozen())
      << "execute() before FeatureStore::freeze()";
  IDS_CHECK(keywords_ == nullptr || keywords_->frozen())
      << "execute() before InvertedIndex::freeze()";
  QueryExecution exec(options_, triples_, features_, keywords_, vectors_,
                      &registry_, &profiler_);
  return exec.run(query);
}

std::string IdsEngine::explain(const Query& query) const {
  std::string out = "plan (" + std::to_string(options_.topology.num_nodes) +
                    " nodes x " +
                    std::to_string(options_.topology.ranks_per_node) +
                    " ranks):\n";
  char buf[160];

  auto order = order_patterns(*triples_, query.patterns);
  auto term_str = [this](const graph::PatternTerm& t) {
    return t.is_var ? "?" + t.var : triples_->dict().name(t.constant);
  };
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& p = query.patterns[order[i]];
    std::snprintf(buf, sizeof(buf), "  %zu. %s { %s %s %s } est=%zu rows\n",
                  i + 1, i == 0 ? "scan" : "join",
                  term_str(p.s).c_str(), term_str(p.p).c_str(),
                  term_str(p.o).c_str(),
                  estimate_cardinality(*triples_, p));
    out += buf;
  }
  for (const auto& kc : query.keywords) {
    out += "  keyword ?" + kc.var + " matches " +
           (kc.conjunctive ? "ALL" : "ANY") + " of " +
           std::to_string(kc.tokens.size()) + " token(s)\n";
  }
  for (const auto& vc : query.vectors) {
    out += "  vector ?" + vc.var + " top-" + std::to_string(vc.k) +
           (vc.ivf_nprobe > 0 ? " (IVF nprobe=" + std::to_string(vc.ivf_nprobe) + ")"
                              : " (exact scan)") +
           "\n";
  }

  if (!query.filters.empty()) {
    std::vector<expr::Conjunct> conjuncts;
    for (const auto& f : query.filters) {
      auto flat = expr::flatten_conjuncts(f);
      conjuncts.insert(conjuncts.end(), flat.begin(), flat.end());
    }
    auto rank0 = options_.reorder_filters
                     ? order_conjuncts(conjuncts, 0, profiler_)
                     : [&] {
                         std::vector<std::size_t> v(conjuncts.size());
                         std::iota(v.begin(), v.end(), 0);
                         return v;
                       }();
    out += "  filter chain (rank 0 order";
    // How many distinct per-rank orders would the planner emit?
    if (options_.reorder_filters) {
      std::set<std::vector<std::size_t>> distinct;
      for (int r = 0; r < options_.topology.num_ranks(); ++r) {
        distinct.insert(order_conjuncts(conjuncts, r, profiler_));
      }
      out += ", " + std::to_string(distinct.size()) +
             " distinct order(s) across ranks";
    } else {
      out += ", reordering off";
    }
    out += "):\n";
    for (std::size_t ci : rank0) {
      ConjunctEstimate est = estimate_conjunct(conjuncts[ci], 0, profiler_);
      std::snprintf(buf, sizeof(buf),
                    "    %-48s est_cost=%.4gs reject_rate=%.2f\n",
                    conjuncts[ci].expr->to_string().c_str(), est.cost_seconds,
                    est.rejection_rate);
      out += buf;
    }
  }

  if (!query.distinct_var.empty()) {
    out += "  distinct ?" + query.distinct_var + "\n";
  }
  for (const auto& inv : query.invokes) {
    out += "  invoke " + inv.udf + " -> ?" + inv.out_var;
    if (inv.use_cache && options_.cache) {
      out += " [cached: " + inv.cache_prefix + "]";
    }
    out += "\n";
  }
  if (!query.order_by.empty()) {
    out += "  order by ?" + query.order_by +
           (query.order_descending ? " desc" : " asc") + "\n";
  }
  if (query.limit > 0) out += "  limit " + std::to_string(query.limit) + "\n";
  return out;
}

}  // namespace ids::core
