#include "core/parser.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.h"

namespace ids::core {

namespace {

// ---- Lexer -----------------------------------------------------------------

enum class TokKind {
  kEnd,
  kIdent,    // bare identifier / IRI / dotted udf name: a-zA-Z0-9_:./#-
  kVar,      // ?name (value excludes the '?')
  kString,   // "..." (value excludes quotes)
  kNumber,   // 123, 1.5, -2e3
  kPunct,    // {, }, (, ), [, ], ., ,,
  kOp,       // && || ! == != <= >= < > + - * /
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  Status error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(current_.pos) + " near '" +
                                   current_.text + "'");
  }

 private:
  static bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '/' || c == '#' || c == '-' || c == '.';
  }

  void advance() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
    current_ = Token{};
    current_.pos = pos_;
    if (pos_ >= src_.size()) return;

    char c = src_[pos_];
    // Variables.
    if (c == '?') {
      std::size_t start = ++pos_;
      while (pos_ < src_.size() && (std::isalnum(static_cast<unsigned char>(
                                        src_[pos_])) ||
                                    src_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = TokKind::kVar;
      current_.text = std::string(src_.substr(start, pos_ - start));
      return;
    }
    // Strings.
    if (c == '"') {
      std::size_t start = ++pos_;
      while (pos_ < src_.size() && src_[pos_] != '"') ++pos_;
      current_.kind = TokKind::kString;
      current_.text = std::string(src_.substr(start, pos_ - start));
      if (pos_ < src_.size()) ++pos_;  // closing quote
      return;
    }
    // Numbers (a leading digit; unary minus is handled by the expression
    // grammar).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E' ||
              ((src_[pos_] == '+' || src_[pos_] == '-') && pos_ > start &&
               (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E')))) {
        ++pos_;
      }
      current_.kind = TokKind::kNumber;
      current_.text = std::string(src_.substr(start, pos_ - start));
      return;
    }
    // Multi-char operators.
    auto two = src_.substr(pos_, 2);
    for (std::string_view op : {"&&", "||", "==", "!=", "<=", ">="}) {
      if (two == op) {
        current_.kind = TokKind::kOp;
        current_.text = std::string(op);
        pos_ += 2;
        return;
      }
    }
    // Single-char operators / punctuation.
    if (std::string_view("<>!+-*/").find(c) != std::string_view::npos) {
      current_.kind = TokKind::kOp;
      current_.text = std::string(1, c);
      ++pos_;
      return;
    }
    if (std::string_view("{}()[].,").find(c) != std::string_view::npos) {
      current_.kind = TokKind::kPunct;
      current_.text = std::string(1, c);
      ++pos_;
      return;
    }
    // Identifiers / IRIs / keywords.
    if (ident_char(c)) {
      std::size_t start = pos_;
      while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
      current_.kind = TokKind::kIdent;
      current_.text = std::string(src_.substr(start, pos_ - start));
      return;
    }
    current_.kind = TokKind::kOp;
    current_.text = std::string(1, c);
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  Token current_;
};

// ---- Parser ----------------------------------------------------------------

class Parser {
 public:
  Parser(std::string_view src, graph::Dictionary* dict)
      : lexer_(src), dict_(dict) {}

  Result<Query> parse() {
    Query q;
    if (Status st = parse_select(&q); !st.ok()) return st;
    if (Status st = parse_where(&q); !st.ok()) return st;
    // Optional tail clauses in any order.
    for (;;) {
      std::string kw = to_lower(lexer_.peek().text);
      if (lexer_.peek().kind != TokKind::kIdent) break;
      Status st = Status::Ok();
      if (kw == "filter") {
        st = parse_filter(&q);
      } else if (kw == "keyword") {
        st = parse_keyword(&q);
      } else if (kw == "vector") {
        st = parse_vector(&q);
      } else if (kw == "distinct") {
        st = parse_distinct(&q);
      } else if (kw == "invoke") {
        st = parse_invoke(&q);
      } else if (kw == "order") {
        st = parse_order(&q);
      } else if (kw == "limit") {
        st = parse_limit(&q);
      } else {
        return lexer_.error("unexpected clause '" + kw + "'");
      }
      if (!st.ok()) return st;
    }
    if (lexer_.peek().kind != TokKind::kEnd) {
      return lexer_.error("trailing input");
    }
    return q;
  }

  Result<expr::ExprPtr> parse_single_expression() {
    expr::ExprPtr e;
    if (Status st = parse_or(&e); !st.ok()) return st;
    if (lexer_.peek().kind != TokKind::kEnd) {
      return lexer_.error("trailing input after expression");
    }
    return e;
  }

 private:
  bool at_keyword(const char* kw) {
    return lexer_.peek().kind == TokKind::kIdent &&
           to_lower(lexer_.peek().text) == kw;
  }

  Status expect_keyword(const char* kw) {
    if (!at_keyword(kw)) {
      return lexer_.error(std::string("expected '") + kw + "'");
    }
    lexer_.take();
    return Status::Ok();
  }

  Status expect_punct(const char* p) {
    if (lexer_.peek().kind != TokKind::kPunct || lexer_.peek().text != p) {
      return lexer_.error(std::string("expected '") + p + "'");
    }
    lexer_.take();
    return Status::Ok();
  }

  Status parse_select(Query* q) {
    if (Status st = expect_keyword("select"); !st.ok()) return st;
    if (lexer_.peek().kind == TokKind::kOp && lexer_.peek().text == "*") {
      lexer_.take();  // SELECT * == project everything
      return Status::Ok();
    }
    while (lexer_.peek().kind == TokKind::kVar) {
      q->select.push_back(lexer_.take().text);
    }
    if (q->select.empty()) {
      return lexer_.error("SELECT needs '*' or at least one variable");
    }
    return Status::Ok();
  }

  Status parse_pattern_term(graph::PatternTerm* out) {
    const Token& t = lexer_.peek();
    if (t.kind == TokKind::kVar) {
      *out = graph::PatternTerm::Var(lexer_.take().text);
      return Status::Ok();
    }
    if (t.kind == TokKind::kIdent) {
      *out = graph::PatternTerm::Const(dict_->intern(lexer_.take().text));
      return Status::Ok();
    }
    if (t.kind == TokKind::kString) {
      // Literals are stored quoted in the dictionary (Turtle-style).
      *out = graph::PatternTerm::Const(
          dict_->intern("\"" + lexer_.take().text + "\""));
      return Status::Ok();
    }
    return lexer_.error("expected IRI, literal or variable");
  }

  Status parse_where(Query* q) {
    if (Status st = expect_keyword("where"); !st.ok()) return st;
    if (Status st = expect_punct("{"); !st.ok()) return st;
    while (!(lexer_.peek().kind == TokKind::kPunct &&
             lexer_.peek().text == "}")) {
      graph::TriplePattern p;
      if (Status st = parse_pattern_term(&p.s); !st.ok()) return st;
      if (Status st = parse_pattern_term(&p.p); !st.ok()) return st;
      if (Status st = parse_pattern_term(&p.o); !st.ok()) return st;
      q->patterns.push_back(std::move(p));
      if (lexer_.peek().kind == TokKind::kPunct && lexer_.peek().text == ".") {
        lexer_.take();
      }
    }
    lexer_.take();  // '}'
    if (q->patterns.empty()) {
      return lexer_.error("WHERE block has no patterns");
    }
    return Status::Ok();
  }

  Status parse_filter(Query* q) {
    lexer_.take();  // FILTER
    expr::ExprPtr e;
    if (Status st = parse_or(&e); !st.ok()) return st;
    q->filters.push_back(std::move(e));
    return Status::Ok();
  }

  Status parse_keyword(Query* q) {
    lexer_.take();  // KEYWORD
    if (lexer_.peek().kind != TokKind::kVar) {
      return lexer_.error("KEYWORD needs a variable");
    }
    KeywordClause kc;
    kc.var = lexer_.take().text;
    if (Status st = expect_keyword("matches"); !st.ok()) return st;
    if (at_keyword("all")) {
      lexer_.take();
      kc.conjunctive = true;
    } else if (at_keyword("any")) {
      lexer_.take();
      kc.conjunctive = false;
    } else {
      return lexer_.error("expected ALL or ANY");
    }
    if (Status st = expect_punct("("); !st.ok()) return st;
    for (;;) {
      if (lexer_.peek().kind != TokKind::kString) {
        return lexer_.error("expected token string");
      }
      kc.tokens.push_back(lexer_.take().text);
      if (lexer_.peek().kind == TokKind::kPunct && lexer_.peek().text == ",") {
        lexer_.take();
        continue;
      }
      break;
    }
    if (Status st = expect_punct(")"); !st.ok()) return st;
    q->keywords.push_back(std::move(kc));
    return Status::Ok();
  }

  Status parse_vector(Query* q) {
    lexer_.take();  // VECTOR
    if (lexer_.peek().kind != TokKind::kVar) {
      return lexer_.error("VECTOR needs a variable");
    }
    VectorClause vc;
    vc.var = lexer_.take().text;
    if (Status st = expect_keyword("nearest"); !st.ok()) return st;
    if (lexer_.peek().kind != TokKind::kNumber) {
      return lexer_.error("expected k");
    }
    vc.k = static_cast<std::size_t>(std::strtoull(
        lexer_.take().text.c_str(), nullptr, 10));
    if (at_keyword("cosine")) {
      lexer_.take();
      vc.metric = store::Metric::kCosine;
    } else if (at_keyword("dot")) {
      lexer_.take();
      vc.metric = store::Metric::kDot;
    } else if (at_keyword("l2")) {
      lexer_.take();
      vc.metric = store::Metric::kL2;
    }
    if (Status st = expect_punct("["); !st.ok()) return st;
    for (;;) {
      double v = 0.0;
      if (Status st = parse_signed_number(&v); !st.ok()) return st;
      vc.query.push_back(static_cast<float>(v));
      if (lexer_.peek().kind == TokKind::kPunct && lexer_.peek().text == ",") {
        lexer_.take();
        continue;
      }
      break;
    }
    if (Status st = expect_punct("]"); !st.ok()) return st;
    q->vectors.push_back(std::move(vc));
    return Status::Ok();
  }

  Status parse_distinct(Query* q) {
    lexer_.take();  // DISTINCT
    if (lexer_.peek().kind != TokKind::kVar) {
      return lexer_.error("DISTINCT needs a variable");
    }
    q->distinct_var = lexer_.take().text;
    return Status::Ok();
  }

  Status parse_invoke(Query* q) {
    lexer_.take();  // INVOKE
    if (lexer_.peek().kind != TokKind::kIdent) {
      return lexer_.error("INVOKE needs a UDF name");
    }
    InvokeClause inv;
    inv.udf = lexer_.take().text;
    if (Status st = expect_punct("("); !st.ok()) return st;
    if (!(lexer_.peek().kind == TokKind::kPunct &&
          lexer_.peek().text == ")")) {
      for (;;) {
        expr::ExprPtr arg;
        if (Status st = parse_or(&arg); !st.ok()) return st;
        inv.args.push_back(std::move(arg));
        if (lexer_.peek().kind == TokKind::kPunct &&
            lexer_.peek().text == ",") {
          lexer_.take();
          continue;
        }
        break;
      }
    }
    if (Status st = expect_punct(")"); !st.ok()) return st;
    if (Status st = expect_keyword("as"); !st.ok()) return st;
    if (lexer_.peek().kind != TokKind::kVar) {
      return lexer_.error("INVOKE ... AS needs a variable");
    }
    inv.out_var = lexer_.take().text;
    if (at_keyword("cache")) {
      lexer_.take();
      if (lexer_.peek().kind != TokKind::kString) {
        return lexer_.error("CACHE needs a prefix string");
      }
      inv.use_cache = true;
      inv.cache_prefix = lexer_.take().text;
    }
    q->invokes.push_back(std::move(inv));
    return Status::Ok();
  }

  Status parse_order(Query* q) {
    lexer_.take();  // ORDER
    if (Status st = expect_keyword("by"); !st.ok()) return st;
    if (lexer_.peek().kind != TokKind::kVar) {
      return lexer_.error("ORDER BY needs a variable");
    }
    q->order_by = lexer_.take().text;
    if (at_keyword("desc")) {
      lexer_.take();
      q->order_descending = true;
    } else if (at_keyword("asc")) {
      lexer_.take();
    }
    return Status::Ok();
  }

  Status parse_limit(Query* q) {
    lexer_.take();  // LIMIT
    if (lexer_.peek().kind != TokKind::kNumber) {
      return lexer_.error("LIMIT needs a number");
    }
    q->limit = static_cast<std::size_t>(
        std::strtoull(lexer_.take().text.c_str(), nullptr, 10));
    return Status::Ok();
  }

  Status parse_signed_number(double* out) {
    double sign = 1.0;
    if (lexer_.peek().kind == TokKind::kOp && lexer_.peek().text == "-") {
      lexer_.take();
      sign = -1.0;
    }
    if (lexer_.peek().kind != TokKind::kNumber) {
      return lexer_.error("expected number");
    }
    *out = sign * std::strtod(lexer_.take().text.c_str(), nullptr);
    return Status::Ok();
  }

  // -- Expression grammar (precedence climbing) ----------------------------

  Status parse_or(expr::ExprPtr* out) {
    if (Status st = parse_and(out); !st.ok()) return st;
    while (lexer_.peek().kind == TokKind::kOp && lexer_.peek().text == "||") {
      lexer_.take();
      expr::ExprPtr rhs;
      if (Status st = parse_and(&rhs); !st.ok()) return st;
      *out = expr::Expr::Or(*out, std::move(rhs));
    }
    return Status::Ok();
  }

  Status parse_and(expr::ExprPtr* out) {
    if (Status st = parse_cmp(out); !st.ok()) return st;
    while (lexer_.peek().kind == TokKind::kOp && lexer_.peek().text == "&&") {
      lexer_.take();
      expr::ExprPtr rhs;
      if (Status st = parse_cmp(&rhs); !st.ok()) return st;
      *out = expr::Expr::And(*out, std::move(rhs));
    }
    return Status::Ok();
  }

  Status parse_cmp(expr::ExprPtr* out) {
    if (Status st = parse_additive(out); !st.ok()) return st;
    if (lexer_.peek().kind != TokKind::kOp) return Status::Ok();
    const std::string op = lexer_.peek().text;
    expr::CmpOp c;
    if (op == "==") c = expr::CmpOp::kEq;
    else if (op == "!=") c = expr::CmpOp::kNe;
    else if (op == "<") c = expr::CmpOp::kLt;
    else if (op == "<=") c = expr::CmpOp::kLe;
    else if (op == ">") c = expr::CmpOp::kGt;
    else if (op == ">=") c = expr::CmpOp::kGe;
    else return Status::Ok();
    lexer_.take();
    expr::ExprPtr rhs;
    if (Status st = parse_additive(&rhs); !st.ok()) return st;
    *out = expr::Expr::Compare(c, *out, std::move(rhs));
    return Status::Ok();
  }

  Status parse_additive(expr::ExprPtr* out) {
    if (Status st = parse_multiplicative(out); !st.ok()) return st;
    while (lexer_.peek().kind == TokKind::kOp &&
           (lexer_.peek().text == "+" || lexer_.peek().text == "-")) {
      bool add = lexer_.take().text == "+";
      expr::ExprPtr rhs;
      if (Status st = parse_multiplicative(&rhs); !st.ok()) return st;
      *out = expr::Expr::Arith(add ? expr::ArithOp::kAdd : expr::ArithOp::kSub,
                               *out, std::move(rhs));
    }
    return Status::Ok();
  }

  Status parse_multiplicative(expr::ExprPtr* out) {
    if (Status st = parse_unary(out); !st.ok()) return st;
    while (lexer_.peek().kind == TokKind::kOp &&
           (lexer_.peek().text == "*" || lexer_.peek().text == "/")) {
      bool mul = lexer_.take().text == "*";
      expr::ExprPtr rhs;
      if (Status st = parse_unary(&rhs); !st.ok()) return st;
      *out = expr::Expr::Arith(mul ? expr::ArithOp::kMul : expr::ArithOp::kDiv,
                               *out, std::move(rhs));
    }
    return Status::Ok();
  }

  Status parse_unary(expr::ExprPtr* out) {
    if (lexer_.peek().kind == TokKind::kOp && lexer_.peek().text == "!") {
      lexer_.take();
      expr::ExprPtr operand;
      if (Status st = parse_unary(&operand); !st.ok()) return st;
      *out = expr::Expr::Not(std::move(operand));
      return Status::Ok();
    }
    if (lexer_.peek().kind == TokKind::kOp && lexer_.peek().text == "-") {
      lexer_.take();
      expr::ExprPtr operand;
      if (Status st = parse_unary(&operand); !st.ok()) return st;
      *out = expr::Expr::Arith(expr::ArithOp::kSub, expr::Expr::Constant(0.0),
                               std::move(operand));
      return Status::Ok();
    }
    return parse_primary(out);
  }

  Status parse_primary(expr::ExprPtr* out) {
    const Token& t = lexer_.peek();
    switch (t.kind) {
      case TokKind::kNumber: {
        *out = expr::Expr::Constant(std::strtod(lexer_.take().text.c_str(),
                                                nullptr));
        return Status::Ok();
      }
      case TokKind::kString: {
        *out = expr::Expr::Constant(lexer_.take().text);
        return Status::Ok();
      }
      case TokKind::kVar: {
        std::string var = lexer_.take().text;
        expr::ExprPtr e = expr::Expr::Var(var);
        // Feature access chain: ?x.feature(.subfeature...).
        while (lexer_.peek().kind == TokKind::kPunct &&
               lexer_.peek().text == ".") {
          lexer_.take();
          if (lexer_.peek().kind != TokKind::kIdent) {
            return lexer_.error("expected feature name after '.'");
          }
          e = expr::Expr::Feature(std::move(e), lexer_.take().text);
        }
        *out = std::move(e);
        return Status::Ok();
      }
      case TokKind::kIdent: {
        std::string name = lexer_.take().text;
        std::string lower = to_lower(name);
        if (lower == "true") {
          *out = expr::Expr::Constant(true);
          return Status::Ok();
        }
        if (lower == "false") {
          *out = expr::Expr::Constant(false);
          return Status::Ok();
        }
        // UDF call.
        if (Status st = expect_punct("("); !st.ok()) return st;
        std::vector<expr::ExprPtr> args;
        if (!(lexer_.peek().kind == TokKind::kPunct &&
              lexer_.peek().text == ")")) {
          for (;;) {
            expr::ExprPtr arg;
            if (Status st = parse_or(&arg); !st.ok()) return st;
            args.push_back(std::move(arg));
            if (lexer_.peek().kind == TokKind::kPunct &&
                lexer_.peek().text == ",") {
              lexer_.take();
              continue;
            }
            break;
          }
        }
        if (Status st = expect_punct(")"); !st.ok()) return st;
        *out = expr::Expr::Udf(std::move(name), std::move(args));
        return Status::Ok();
      }
      case TokKind::kPunct: {
        if (t.text == "(") {
          lexer_.take();
          if (Status st = parse_or(out); !st.ok()) return st;
          return expect_punct(")");
        }
        break;
      }
      default:
        break;
    }
    return lexer_.error("expected expression");
  }

  Lexer lexer_;
  graph::Dictionary* dict_;
};

}  // namespace

Result<Query> parse_query(std::string_view text, graph::Dictionary* dict) {
  Parser p(text, dict);
  return p.parse();
}

Result<expr::ExprPtr> parse_expression(std::string_view text) {
  Parser p(text, nullptr);
  return p.parse_single_expression();
}

}  // namespace ids::core
