#pragma once

// Query planning (§2.4).
//
// Two planner responsibilities:
//
//   1. Pattern ordering: greedy selectivity-first join order. The first
//      pattern is the one with the lowest estimated cardinality; each
//      subsequent pick must share a variable with the already-bound set
//      (preferring subject-bound extensions, which resolve to index
//      lookups instead of hash joins).
//
//   2. FILTER conjunct ordering (§2.4.3): each rank reorders the
//      conjunctive chain by ascending estimated evaluation cost from its
//      *own* UDF profile; conjuncts with similar cost (within ~20%) are
//      tie-broken by pruning power (higher rejection rate first). Ranks
//      may legitimately end up with different orders.

#include <vector>

#include "core/ast.h"
#include "expr/chain.h"
#include "graph/triple_store.h"
#include "udf/profiler.h"

namespace ids::core {

/// Estimated number of matches of a pattern (exact count over the store's
/// shards — affordable at our scale and exact for the planner tests).
std::size_t estimate_cardinality(const graph::TripleStore& store,
                                 const graph::TriplePattern& pattern);

/// Returns an execution order (indices into `patterns`). Patterns
/// unreachable by shared variables are appended at the end (they will
/// execute as cartesian joins).
std::vector<std::size_t> order_patterns(
    const graph::TripleStore& store,
    const std::vector<graph::TriplePattern>& patterns);

/// Per-conjunct planning estimate.
struct ConjunctEstimate {
  double cost_seconds = 0.0;     // profiled mean cost of contained UDFs
  double rejection_rate = 0.0;   // max rejection rate of contained UDFs
};

ConjunctEstimate estimate_conjunct(const expr::Conjunct& conjunct, int rank,
                                   const udf::UdfProfiler& profiler);

/// Reorders `conjuncts` for `rank`: ascending cost, ties (within
/// `similar_ratio`) broken by descending rejection rate; equal conjuncts
/// keep their original relative order (stable).
std::vector<std::size_t> order_conjuncts(
    const std::vector<expr::Conjunct>& conjuncts, int rank,
    const udf::UdfProfiler& profiler, double similar_ratio = 1.2);

/// Estimated seconds for `rank` to push one solution through the chain in
/// the given order: conjunct c's cost is discounted by the probability
/// that evaluation reaches it (product of earlier pass rates). This is the
/// "time to evaluate a single solution" estimate re-balancing exchanges
/// (§2.4.2).
double estimate_solution_seconds(
    const std::vector<expr::Conjunct>& conjuncts,
    const std::vector<std::size_t>& order, int rank,
    const udf::UdfProfiler& profiler);

}  // namespace ids::core
