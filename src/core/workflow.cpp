#include "core/workflow.h"

#include "common/check.h"
#include "common/hash.h"
#include "models/dtba.h"
#include "models/pic50.h"
#include "models/smith_waterman.h"
#include "models/structure.h"

namespace ids::core {

namespace {

using datagen::Feat;
using datagen::Vocab;
using expr::Entity;
using expr::Value;

std::optional<std::string_view> sequence_of(const udf::UdfContext& ctx,
                                            const Value& v) {
  const Entity* e = std::get_if<Entity>(&v);
  if (!e || !ctx.features) return std::nullopt;
  return ctx.features->get_string(e->id, Feat::kSequence);
}

std::optional<std::string_view> smiles_of(const udf::UdfContext& ctx,
                                          const Value& v) {
  const Entity* e = std::get_if<Entity>(&v);
  if (!e || !ctx.features) return std::nullopt;
  return ctx.features->get_string(e->id, Feat::kSmiles);
}

}  // namespace

NcnprData build_ncnpr_data(const datagen::LifeSciConfig& config,
                           int num_shards) {
  NcnprData data;
  data.triples = std::make_unique<graph::TripleStore>(num_shards);
  data.features = std::make_unique<store::FeatureStore>(num_shards);
  data.keywords = std::make_unique<store::InvertedIndex>();
  data.vectors = std::make_unique<store::VectorStore>(
      num_shards, static_cast<int>(models::DtbaModel::kProteinDims));
  data.dataset = datagen::generate_lifesci(
      config, data.triples.get(), data.features.get(),
      config.build_keyword_index ? data.keywords.get() : nullptr,
      config.build_vector_store ? data.vectors.get() : nullptr);
  data.triples->finalize();
  data.features->freeze();
  data.keywords->freeze();
  auto seq = data.features->get_string(data.dataset.target_protein,
                                       Feat::kSequence);
  IDS_CHECK(seq.has_value()) << "target protein has no sequence feature";
  data.target_sequence = std::string(*seq);
  return data;
}

void register_ncnpr_udfs(IdsEngine* engine, const NcnprData& data,
                         const models::DockingParams& docking) {
  const models::CostProfile& costs = engine->options().costs;
  const sim::Nanos load_cost = costs.module_load_cost();
  auto& registry = engine->registry();

  // Shared workflow state captured by the UDF closures. Building the
  // receptor runs the structure-prediction step once (the AlphaFold leg of
  // the workflow).
  std::string target_seq = data.target_sequence;
  auto structure =
      std::make_shared<models::PredictedStructure>(
          models::predict_structure(target_seq));
  auto docking_engine = std::make_shared<models::DockingEngine>(
      models::receptor_from_structure(*structure), docking);
  auto dtba_model = std::make_shared<models::DtbaModel>();

  registry.register_dynamic(
      "ncnpr", "sw_similarity",
      [target_seq, costs](const udf::UdfContext& ctx,
                          std::span<const Value> args) -> udf::UdfResult {
        auto seq = sequence_of(ctx, args.empty() ? Value{} : args[0]);
        if (!seq) return {expr::null_value(), costs.sw_cost(1)};
        models::SwResult r = models::smith_waterman(target_seq, *seq);
        int sa = models::self_score(target_seq);
        int sb = models::self_score(*seq);
        double sim = 0.0;
        if (sa > 0 && sb > 0) {
          sim = static_cast<double>(r.score) /
                std::sqrt(static_cast<double>(sa) * static_cast<double>(sb));
          sim = std::clamp(sim, 0.0, 1.0);
        }
        return {sim, costs.sw_cost(r.cells)};
      },
      load_cost);

  registry.register_dynamic(
      "ncnpr", "pic50",
      [costs](const udf::UdfContext& ctx,
              std::span<const Value> args) -> udf::UdfResult {
        const Entity* e =
            args.empty() ? nullptr : std::get_if<Entity>(&args[0]);
        if (!e || !ctx.features) return {expr::null_value(), costs.pic50_cost()};
        auto ic50 = ctx.features->get_double(e->id, Feat::kIc50Nm);
        if (!ic50) return {expr::null_value(), costs.pic50_cost()};
        auto p = models::pic50_from_ic50_nm(*ic50);
        if (!p) return {expr::null_value(), costs.pic50_cost()};
        return {*p, costs.pic50_cost()};
      },
      load_cost);

  registry.register_dynamic(
      "ncnpr", "dtba",
      [dtba_model, costs](const udf::UdfContext& ctx,
                          std::span<const Value> args) -> udf::UdfResult {
        if (args.size() < 2) return {expr::null_value(), 0};
        auto seq = sequence_of(ctx, args[0]);
        auto smi = smiles_of(ctx, args[1]);
        if (!seq || !smi) {
          return {expr::null_value(), sim::from_seconds(1e-6)};
        }
        models::DtbaModel::Prediction p = dtba_model->predict(*seq, *smi);
        std::uint64_t call_hash =
            hash_combine(fnv1a64(*seq), fnv1a64(*smi));
        return {p.affinity, costs.dtba_cost(p.work_units, call_hash)};
      },
      load_cost);

  registry.register_dynamic(
      "ncnpr", "dock",
      [docking_engine, costs](const udf::UdfContext& ctx,
                              std::span<const Value> args) -> udf::UdfResult {
        auto smi = smiles_of(ctx, args.empty() ? Value{} : args[0]);
        if (!smi) return {expr::null_value(), sim::from_seconds(1e-6)};
        models::DockingResult r = docking_engine->dock_smiles(*smi, 0);
        return {r.best_energy, costs.docking_cost(r.work_units)};
      },
      load_cost);
}

Query make_ncnpr_query(const NcnprData& data, const NcnprThresholds& t,
                       bool with_docking, bool docking_cached) {
  const auto& dict = data.triples->dict();
  auto term = [&dict](const char* iri) {
    auto id = dict.lookup(iri);
    IDS_CHECK(id.has_value())
        << "vocabulary term missing from the graph: " << iri;
    return graph::PatternTerm::Const(*id);
  };
  auto var = [](const char* name) { return graph::PatternTerm::Var(name); };

  Query q;
  // Step 1+3: reviewed proteins and the compounds that inhibit them.
  q.patterns.push_back({var("prot"), term(Vocab::kType), term(Vocab::kProtein)});
  q.patterns.push_back({var("prot"), term(Vocab::kReviewed), term(Vocab::kTrue)});
  q.patterns.push_back({var("cpd"), term(Vocab::kInhibits), var("prot")});

  // Step 4: the filter chain, written cheapest-last on purpose — the
  // planner's profile-driven reordering has to earn its keep.
  using expr::CmpOp;
  using expr::Expr;
  q.filters.push_back(Expr::Compare(
      CmpOp::kGe, Expr::Udf("ncnpr.dtba", {Expr::Var("prot"), Expr::Var("cpd")}),
      Expr::Constant(t.min_dtba)));
  q.filters.push_back(Expr::Compare(
      CmpOp::kGe, Expr::Udf("ncnpr.sw_similarity", {Expr::Var("prot")}),
      Expr::Constant(t.min_sw_similarity)));
  q.filters.push_back(Expr::Compare(
      CmpOp::kGe, Expr::Udf("ncnpr.pic50", {Expr::Var("cpd")}),
      Expr::Constant(t.min_pic50)));

  // Step 5: dock each surviving compound once.
  if (with_docking) {
    q.distinct_var = "cpd";
    InvokeClause dock;
    dock.udf = "ncnpr.dock";
    dock.args = {expr::Expr::Var("cpd")};
    dock.out_var = "energy";
    dock.use_cache = docking_cached;
    dock.cache_prefix = "vina/P29274";
    q.invokes.push_back(std::move(dock));
    q.order_by = "energy";
  }
  q.select = {"cpd"};
  return q;
}

}  // namespace ids::core
