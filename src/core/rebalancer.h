#pragma once

// Solution re-balancing (§2.4.2).
//
// Before expensive operators (notably FILTERs containing UDFs), IDS
// redistributes intermediate solutions across ranks. Two strategies:
//
//   count-based      — every rank gets ~total/P rows (the default between
//                      scans/joins/merges).
//   throughput-based — when per-rank UDF throughput estimates diverge by
//                      more than ~20%, each rank is assigned rows in
//                      proportion to its estimated solutions/second, so
//                      all ranks finish together (the paper's worked
//                      example: 900 ranks at 100/200/300 ops/s).
//
// Targets always conserve the total row count exactly (largest-remainder
// apportionment), a tested invariant.

#include <cstddef>
#include <vector>

namespace ids::core {

enum class RebalancePolicy { kNone, kCount, kThroughput };

struct RebalanceDecision {
  bool rebalance = false;          // false: leave rows where they are
  bool used_throughput = false;    // which strategy produced the targets
  double speed_ratio = 1.0;        // fastest/slowest throughput observed
  std::vector<std::size_t> targets;  // rows per rank after redistribution
};

/// Equal split of `total` over `ranks` (remainder spread over the first
/// `total % ranks` ranks).
std::vector<std::size_t> count_based_targets(std::size_t total, int ranks);

/// Proportional-to-throughput split, conserving `total` exactly. Ranks
/// with throughput <= 0 receive (almost) nothing.
std::vector<std::size_t> throughput_targets(
    std::size_t total, const std::vector<double>& throughput);

/// Full policy: picks count- vs throughput-based per the ~20% rule
/// ("within ~20% of the slowest one, re-balancing defaults to query
/// count-based"). `throughput[r]` is rank r's estimated solutions/second;
/// zeros (no profile yet) force count-based.
RebalanceDecision decide_rebalance(RebalancePolicy policy,
                                   const std::vector<std::size_t>& counts,
                                   const std::vector<double>& throughput,
                                   double ratio_threshold = 1.2);

/// Modeled completion time (seconds) of `counts` rows at `throughput`
/// solutions/second — the max over ranks. Used by tests and the ablation
/// bench to check the paper's closed-form example.
double completion_seconds(const std::vector<std::size_t>& counts,
                          const std::vector<double>& throughput);

}  // namespace ids::core
