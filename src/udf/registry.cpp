#include "udf/registry.h"

#include <algorithm>

#include "telemetry/metrics.h"

namespace ids::udf {

namespace {

// Process-wide registration/load counters (all registries report into the
// global registry: these describe code-loading activity, not one engine).
telemetry::Counter* registered_counter(const char* kind) {
  return telemetry::MetricsRegistry::global().counter(
      "ids_udf_registered_total", {{"kind", kind}});
}

}  // namespace

bool UdfRegistry::register_static(std::string name, UdfFn fn) {
  MutexLock lock(mutex_);
  if (udfs_.contains(name)) return false;
  UdfInfo info;
  info.name = name;
  info.fn = std::move(fn);
  info.dynamic = false;
  udfs_.emplace(std::move(name), std::move(info));
  registered_counter("static")->inc();
  return true;
}

void UdfRegistry::register_dynamic(std::string module, std::string method,
                                   UdfFn fn, sim::Nanos load_cost) {
  MutexLock lock(mutex_);
  std::string name = module + "." + method;
  UdfInfo info;
  info.name = name;
  info.module = std::move(module);
  info.fn = std::move(fn);
  info.dynamic = true;
  info.module_load_cost = load_cost;
  udfs_[std::move(name)] = std::move(info);
  registered_counter("dynamic")->inc();
}

const UdfInfo* UdfRegistry::find(std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = udfs_.find(std::string(name));
  if (it == udfs_.end()) return nullptr;
  return &it->second;
}

sim::Nanos UdfRegistry::charge_module_load(int rank, const UdfInfo& info) {
  if (!info.dynamic || info.module_load_cost == 0) return 0;
  MutexLock lock(mutex_);
  auto [it, inserted] = loaded_.emplace(rank, info.module);
  (void)it;
  if (inserted) {
    telemetry::MetricsRegistry::global()
        .counter("ids_udf_module_loads_total", {{"module", info.module}})
        ->inc();
  }
  return inserted ? info.module_load_cost : 0;
}

void UdfRegistry::force_reload(std::string_view module) {
  telemetry::MetricsRegistry::global()
      .counter("ids_udf_module_reloads_total")
      ->inc();
  MutexLock lock(mutex_);
  for (auto it = loaded_.begin(); it != loaded_.end();) {
    if (it->second == module) {
      it = loaded_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<std::string> UdfRegistry::names() const {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(udfs_.size());
  for (const auto& [name, info] : udfs_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ids::udf
