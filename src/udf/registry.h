#pragma once

// User-defined function registry and module cache.
//
// Mirrors §2.3 of the paper: IDS supports (i) *static* UDFs compiled in at
// launch (CGE's shared-object path, tracked by unique name) and (ii)
// *dynamic* UDFs loaded at query time (the Python path, tracked by module
// name + method name). Loading a dynamic module is expensive, so a
// per-rank module cache charges the import cost only on first use; a
// force_reload API invalidates a module so edited user code takes effect,
// paying the load cost again.

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "expr/value.h"
#include "sim/time.h"

namespace ids::store {
class FeatureStore;
class VectorStore;
}  // namespace ids::store

namespace ids::udf {

/// Read-only services a UDF may use, plus the rank identity and a
/// deterministic per-call RNG stream.
struct UdfContext {
  int rank = 0;
  const store::FeatureStore* features = nullptr;
  const store::VectorStore* vectors = nullptr;
  Rng* rng = nullptr;
};

/// A UDF returns its value plus the *modeled* execution cost. Separating
/// modeled cost from wall time keeps the simulation deterministic: the real
/// kernel runs at laptop scale while the cost reflects the paper's
/// measured per-call magnitudes.
struct UdfResult {
  expr::Value value;
  sim::Nanos modeled_cost = 0;
};

using UdfFn = std::function<UdfResult(const UdfContext&, std::span<const expr::Value>)>;

struct UdfInfo {
  std::string name;        // fully qualified: "sw_similarity" or "mod.fn"
  std::string module;      // empty for static UDFs
  UdfFn fn;
  bool dynamic = false;
  sim::Nanos module_load_cost = 0;  // one-time per-rank import cost
};

class UdfRegistry {
 public:
  /// Registers a compiled-in UDF under a unique name. Static UDFs cannot be
  /// replaced once registered (the paper notes the shared-object path "was
  /// static because they cannot be modified once IDS launched").
  /// Returns false if the name exists.
  bool register_static(std::string name, UdfFn fn) IDS_EXCLUDES(mutex_);

  /// Registers (or replaces) a dynamically loaded UDF as `module.method`.
  /// `load_cost` models the module import time charged once per rank.
  void register_dynamic(std::string module, std::string method, UdfFn fn,
                        sim::Nanos load_cost) IDS_EXCLUDES(mutex_);

  /// Looks up a UDF by its qualified name. nullptr if absent. The pointer
  /// stays valid until the same dynamic name is re-registered (static UDFs
  /// are immutable once registered; map nodes are stable across rehash).
  const UdfInfo* find(std::string_view name) const IDS_EXCLUDES(mutex_);

  /// Returns the modeled cost this rank must pay before calling `info`
  /// (the module import on first touch), and marks the module loaded.
  sim::Nanos charge_module_load(int rank, const UdfInfo& info)
      IDS_EXCLUDES(mutex_);

  /// Drops the module from every rank's cache; next call per rank pays the
  /// load cost again. Models the paper's "special function that forces IDS
  /// to reload the module".
  void force_reload(std::string_view module) IDS_EXCLUDES(mutex_);

  std::vector<std::string> names() const IDS_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::unordered_map<std::string, UdfInfo> udfs_ IDS_GUARDED_BY(mutex_);
  // (rank, module) pairs whose import cost has been charged.
  std::set<std::pair<int, std::string>> loaded_ IDS_GUARDED_BY(mutex_);
};

}  // namespace ids::udf
