#pragma once

// Per-rank UDF profiling (§2.4.1).
//
// For every UDF, each rank tracks exactly the three statistics the paper
// lists: (i) execution count, (ii) total execution time, and (iii) the
// number of query expressions rejected due to the UDF. The planner uses
// mean cost for chain reordering (§2.4.3) and per-rank throughput for
// solution re-balancing (§2.4.2). The store is continually updated over
// the lifetime of an IDS instance — stats persist across queries.
//
// Locking contract: the store is sharded by rank, one mutex per shard.
// A rank's record_* calls only touch its own shard (uncontended on the
// hot path), while cross-rank readers (aggregate, estimated cost) lock
// each shard in turn — so the planner may read concurrently with ranks
// still recording, which is exactly what solution re-balancing does.

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "sim/time.h"
#include "telemetry/metrics.h"

namespace ids::udf {

struct UdfStats {
  std::uint64_t execs = 0;
  sim::Nanos total_time = 0;
  std::uint64_t rejects = 0;

  /// Mean modeled seconds per execution; 0 when never executed.
  double mean_cost_seconds() const {
    return execs == 0 ? 0.0
                      : sim::to_seconds(total_time) / static_cast<double>(execs);
  }

  /// Fraction of executions that rejected the enclosing expression —
  /// the planner's pruning-power estimate. 0 when never executed.
  double rejection_rate() const {
    return execs == 0 ? 0.0
                      : static_cast<double>(rejects) / static_cast<double>(execs);
  }

  void merge(const UdfStats& other) {
    execs += other.execs;
    total_time += other.total_time;
    rejects += other.rejects;
  }
};

class UdfProfiler {
 public:
  /// `metrics` mirrors every record into the registry — an
  /// ids_udf_exec_seconds{udf=...} histogram of modeled per-exec cost and
  /// an ids_udf_rejects_total{udf=...} counter — so UDF latency
  /// distributions appear in the Prometheus exposition alongside the
  /// planner's own per-rank store. nullptr disables mirroring.
  explicit UdfProfiler(int num_ranks,
                       telemetry::MetricsRegistry* metrics = nullptr)
      : metrics_(metrics), per_rank_(static_cast<std::size_t>(num_ranks)) {}

  int num_ranks() const { return static_cast<int>(per_rank_.size()); }

  /// Records one execution on `rank`. Safe to call concurrently from
  /// different ranks, and concurrently with cross-rank readers.
  void record_exec(int rank, std::string_view name, sim::Nanos cost) {
    if (metrics_ != nullptr) {
      metrics_
          ->histogram("ids_udf_exec_seconds",
                      telemetry::latency_seconds_buckets(),
                      {{"udf", std::string(name)}})
          ->observe(sim::to_seconds(cost));
    }
    Shard& shard = per_rank_[static_cast<std::size_t>(rank)];
    MutexLock lock(shard.mutex);
    auto& s = shard.stats[std::string(name)];
    ++s.execs;
    s.total_time += cost;
  }

  /// Records that `name`'s evaluation rejected an expression on `rank`.
  void record_reject(int rank, std::string_view name) {
    if (metrics_ != nullptr) {
      metrics_
          ->counter("ids_udf_rejects_total", {{"udf", std::string(name)}})
          ->inc();
    }
    Shard& shard = per_rank_[static_cast<std::size_t>(rank)];
    MutexLock lock(shard.mutex);
    ++shard.stats[std::string(name)].rejects;
  }

  /// Snapshot of one UDF's stats on one rank; zeroed stats if never seen
  /// there. (A snapshot, not a pointer: the entry may be updated
  /// concurrently by the owning rank.)
  UdfStats get(int rank, std::string_view name) const {
    Shard& shard = per_rank_[static_cast<std::size_t>(rank)];
    MutexLock lock(shard.mutex);
    auto it = shard.stats.find(std::string(name));
    return it == shard.stats.end() ? UdfStats{} : it->second;
  }

  /// Stats aggregated over all ranks.
  UdfStats aggregate(std::string_view name) const {
    const std::string key(name);
    UdfStats out;
    for (Shard& shard : per_rank_) {
      MutexLock lock(shard.mutex);
      auto it = shard.stats.find(key);
      if (it != shard.stats.end()) out.merge(it->second);
    }
    return out;
  }

  /// Executions a rank needs before its own mean is fully trusted. Below
  /// this, the estimate shrinks toward the cross-rank aggregate: with a
  /// handful of samples, per-rank means mostly reflect *which rows* the
  /// rank happened to evaluate (data skew), not how fast the rank is, and
  /// trusting them would let the re-balancer assign nearly all solutions
  /// to a rank whose one sampled row was cheap.
  static constexpr std::uint64_t kFullConfidenceExecs = 16;

  /// Estimated mean cost of one execution on `rank`: the rank's own mean,
  /// shrunk toward the cross-rank aggregate by sample count. Falls back to
  /// the aggregate (then 0) for unseen UDFs.
  double estimated_cost_seconds(int rank, std::string_view name) const {
    UdfStats agg = aggregate(name);
    double agg_mean = agg.mean_cost_seconds();
    UdfStats s = get(rank, name);
    if (s.execs == 0) return agg_mean;
    double w = std::min(1.0, static_cast<double>(s.execs) /
                                 static_cast<double>(kFullConfidenceExecs));
    return (1.0 - w) * agg_mean + w * s.mean_cost_seconds();
  }

  void clear() {
    for (Shard& shard : per_rank_) {
      MutexLock lock(shard.mutex);
      shard.stats.clear();
    }
  }

 private:
  struct Shard {
    mutable Mutex mutex;
    std::unordered_map<std::string, UdfStats> stats IDS_GUARDED_BY(mutex);
  };

  telemetry::MetricsRegistry* metrics_;
  // mutable: const readers (get/aggregate) still lock the shard mutexes.
  mutable std::vector<Shard> per_rank_;
};

}  // namespace ids::udf
