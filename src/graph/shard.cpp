#include "graph/shard.h"

#include <algorithm>
#include <tuple>

#include "common/check.h"

namespace ids::graph {

namespace {

struct KeySPO {
  static std::tuple<TermId, TermId, TermId> key(const Triple& t) {
    return {t.s, t.p, t.o};
  }
};
struct KeyPOS {
  static std::tuple<TermId, TermId, TermId> key(const Triple& t) {
    return {t.p, t.o, t.s};
  }
};
struct KeyOSP {
  static std::tuple<TermId, TermId, TermId> key(const Triple& t) {
    return {t.o, t.s, t.p};
  }
};

template <typename K>
void sort_index(std::vector<Triple>& v) {
  std::sort(v.begin(), v.end(), [](const Triple& a, const Triple& b) {
    return K::key(a) < K::key(b);
  });
}

/// Binary-search range over a sorted-by-K index where the first `bound`
/// components of the key equal `prefix`.
template <typename K>
std::pair<const Triple*, const Triple*> prefix_range(
    const std::vector<Triple>& v, std::array<TermId, 3> prefix, int bound) {
  auto cmp_lo = [&](const Triple& t) {
    auto k = K::key(t);
    std::array<TermId, 3> kk = {std::get<0>(k), std::get<1>(k), std::get<2>(k)};
    for (int i = 0; i < bound; ++i) {
      if (kk[static_cast<std::size_t>(i)] != prefix[static_cast<std::size_t>(i)])
        return kk[static_cast<std::size_t>(i)] < prefix[static_cast<std::size_t>(i)];
    }
    return false;  // equal prefix: not less
  };
  auto cmp_hi = [&](const Triple& t) {
    auto k = K::key(t);
    std::array<TermId, 3> kk = {std::get<0>(k), std::get<1>(k), std::get<2>(k)};
    for (int i = 0; i < bound; ++i) {
      if (kk[static_cast<std::size_t>(i)] != prefix[static_cast<std::size_t>(i)])
        return kk[static_cast<std::size_t>(i)] < prefix[static_cast<std::size_t>(i)];
    }
    return true;  // equal prefix: still "less than end"
  };
  auto lo = std::partition_point(v.begin(), v.end(), cmp_lo);
  auto hi = std::partition_point(lo, v.end(), cmp_hi);
  const Triple* base = v.data();
  return {base + (lo - v.begin()), base + (hi - v.begin())};
}

}  // namespace

void GraphShard::add(const Triple& t) {
  spo_.push_back(t);
  dirty_ = true;
}

void GraphShard::finalize() {
  if (!dirty_) return;
  sort_index<KeySPO>(spo_);
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pos_ = spo_;
  sort_index<KeyPOS>(pos_);
  osp_ = spo_;
  sort_index<KeyOSP>(osp_);
  dirty_ = false;
}

IndexOrder GraphShard::choose_index(const TriplePattern& q) {
  const bool bs = !q.s.is_var;
  const bool bp = !q.p.is_var;
  const bool bo = !q.o.is_var;
  if (bs) return IndexOrder::kSPO;            // s [p [o]] prefix
  if (bp) return IndexOrder::kPOS;            // p [o] prefix
  if (bo) return IndexOrder::kOSP;            // o prefix
  return IndexOrder::kSPO;                    // full scan
}

template <typename Fn>
void GraphShard::scan_impl(const TriplePattern& q, Fn&& fn) const {
  IDS_CHECK(!dirty_) << "scan before finalize";
  const bool bs = !q.s.is_var;
  const bool bp = !q.p.is_var;
  const bool bo = !q.o.is_var;

  // Repeated-variable constraints, e.g. {?x ?p ?x}.
  const bool same_sp = q.s.is_var && q.p.is_var && q.s.var == q.p.var;
  const bool same_so = q.s.is_var && q.o.is_var && q.s.var == q.o.var;
  const bool same_po = q.p.is_var && q.o.is_var && q.p.var == q.o.var;

  auto emit = [&](const Triple& t) {
    if (bs && t.s != q.s.constant) return;
    if (bp && t.p != q.p.constant) return;
    if (bo && t.o != q.o.constant) return;
    if (same_sp && t.s != t.p) return;
    if (same_so && t.s != t.o) return;
    if (same_po && t.p != t.o) return;
    fn(t);
  };

  const Triple* lo = nullptr;
  const Triple* hi = nullptr;
  switch (choose_index(q)) {
    case IndexOrder::kSPO: {
      int bound = bs ? (bp ? (bo ? 3 : 2) : 1) : 0;
      std::tie(lo, hi) = prefix_range<KeySPO>(
          spo_, {q.s.constant, q.p.constant, q.o.constant}, bound);
      break;
    }
    case IndexOrder::kPOS: {
      int bound = bo ? 2 : 1;
      std::tie(lo, hi) = prefix_range<KeyPOS>(
          pos_, {q.p.constant, q.o.constant, kInvalidTerm}, bound);
      break;
    }
    case IndexOrder::kOSP: {
      std::tie(lo, hi) =
          prefix_range<KeyOSP>(osp_, {q.o.constant, kInvalidTerm, kInvalidTerm}, 1);
      break;
    }
  }
  for (const Triple* t = lo; t != hi; ++t) emit(*t);
}

void GraphShard::scan(const TriplePattern& pattern,
                      const std::function<void(const Triple&)>& fn) const {
  scan_impl(pattern, fn);
}

std::size_t GraphShard::count(const TriplePattern& pattern) const {
  std::size_t n = 0;
  scan_impl(pattern, [&n](const Triple&) { ++n; });
  return n;
}

}  // namespace ids::graph
