#include "graph/triple_store.h"

#include "common/check.h"

namespace ids::graph {

TripleStore::TripleStore(int num_shards)
    : shards_(static_cast<std::size_t>(num_shards)) {
  IDS_CHECK(num_shards > 0);
}

void TripleStore::add(std::string_view s, std::string_view p,
                      std::string_view o) {
  IDS_CHECK(!frozen()) << "TripleStore::add after finalize(); reopen() first";
  Triple t{dict_.intern(s), dict_.intern(p), dict_.intern(o)};
  add_ids(t);
}

void TripleStore::add_ids(const Triple& t) {
  IDS_CHECK(!frozen()) << "TripleStore::add_ids after finalize(); reopen() first";
  shards_[static_cast<std::size_t>(shard_of_subject(t.s))].add(t);
}

void TripleStore::finalize() {
  if (frozen()) return;
  for (auto& s : shards_) s.finalize();
  frozen_.store(true, std::memory_order_release);
}

std::size_t TripleStore::total_triples() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s.size();
  return n;
}

std::vector<Triple> TripleStore::match_all(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  for (const auto& s : shards_) {
    s.scan(pattern, [&out](const Triple& t) { out.push_back(t); });
  }
  return out;
}

}  // namespace ids::graph
