#pragma once

// Dictionary encoding for RDF terms.
//
// Like CGE (and every serious triple store), IDS stores triples as integer
// ids and keeps a two-way dictionary from IRIs/literals to ids. Id 0 is
// reserved as "invalid"; ids are assigned densely in interning order, so a
// graph built in a fixed order gets identical ids on every run.
//
// Locking contract: mutex_ guards both maps. names_ is a deque so that the
// references name() hands out stay valid while concurrent intern() calls
// grow it — only the container structure is guarded, settled entries are
// immutable for the dictionary's lifetime.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/thread_annotations.h"

namespace ids::graph {

using TermId = std::uint64_t;
constexpr TermId kInvalidTerm = 0;

class Dictionary {
 public:
  Dictionary() { names_.emplace_back(); }  // slot 0 = invalid

  /// Returns the id for `term`, creating one if needed. Thread-safe.
  TermId intern(std::string_view term) IDS_EXCLUDES(mutex_);

  /// Returns the id for `term` if already interned. Thread-safe.
  std::optional<TermId> lookup(std::string_view term) const
      IDS_EXCLUDES(mutex_);

  /// Returns the string for an id. The id must be valid. The reference
  /// stays valid for the dictionary's lifetime (entries are never removed
  /// or reallocated).
  const std::string& name(TermId id) const IDS_EXCLUDES(mutex_);

  /// Number of interned terms (excluding the invalid slot).
  std::size_t size() const IDS_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  // Cold path: string interning happens at ingest, not in query operators.
  std::unordered_map<std::string, TermId> ids_ IDS_GUARDED_BY(mutex_);  // lint:allow-unordered
  std::deque<std::string> names_ IDS_GUARDED_BY(mutex_);
};

}  // namespace ids::graph
