#pragma once

// Dictionary encoding for RDF terms.
//
// Like CGE (and every serious triple store), IDS stores triples as integer
// ids and keeps a two-way dictionary from IRIs/literals to ids. Id 0 is
// reserved as "invalid"; ids are assigned densely in interning order, so a
// graph built in a fixed order gets identical ids on every run.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ids::graph {

using TermId = std::uint64_t;
constexpr TermId kInvalidTerm = 0;

class Dictionary {
 public:
  Dictionary() { names_.emplace_back(); }  // slot 0 = invalid

  /// Returns the id for `term`, creating one if needed. Thread-safe.
  TermId intern(std::string_view term);

  /// Returns the id for `term` if already interned. Thread-safe.
  std::optional<TermId> lookup(std::string_view term) const;

  /// Returns the string for an id. The id must be valid.
  const std::string& name(TermId id) const;

  /// Number of interned terms (excluding the invalid slot).
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, TermId> ids_;
  std::vector<std::string> names_;
};

}  // namespace ids::graph
