#include "graph/solution.h"

#include <algorithm>

#include "common/check.h"

namespace ids::graph {

SolutionTable::SolutionTable(std::vector<std::string> id_vars,
                             std::vector<std::string> num_vars)
    : id_vars_(std::move(id_vars)),
      num_vars_(std::move(num_vars)),
      id_cols_(id_vars_.size()),
      num_cols_(num_vars_.size()) {}

int SolutionTable::id_var_index(std::string_view name) const {
  for (std::size_t i = 0; i < id_vars_.size(); ++i) {
    if (id_vars_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

int SolutionTable::num_var_index(std::string_view name) const {
  for (std::size_t i = 0; i < num_vars_.size(); ++i) {
    if (num_vars_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void SolutionTable::reserve(std::size_t rows) {
  for (auto& c : id_cols_) c.reserve(rows);
  for (auto& c : num_cols_) c.reserve(rows);
}

void SolutionTable::append_row(std::span<const TermId> ids,
                               std::span<const double> nums) {
  IDS_DCHECK(ids.size() == id_cols_.size());
  IDS_DCHECK(nums.size() == num_cols_.size() ||
             (nums.empty() && num_cols_.empty()));
  for (std::size_t i = 0; i < id_cols_.size(); ++i) id_cols_[i].push_back(ids[i]);
  for (std::size_t i = 0; i < num_cols_.size(); ++i) {
    num_cols_[i].push_back(i < nums.size() ? nums[i] : 0.0);
  }
}

void SolutionTable::append_table(const SolutionTable& other) {
  IDS_CHECK(same_schema(other));
  for (std::size_t i = 0; i < id_cols_.size(); ++i) {
    id_cols_[i].insert(id_cols_[i].end(), other.id_cols_[i].begin(),
                       other.id_cols_[i].end());
  }
  for (std::size_t i = 0; i < num_cols_.size(); ++i) {
    num_cols_[i].insert(num_cols_[i].end(), other.num_cols_[i].begin(),
                        other.num_cols_[i].end());
  }
}

void SolutionTable::append_row_from(const SolutionTable& other,
                                    std::size_t row) {
  IDS_DCHECK(same_schema(other));
  for (std::size_t i = 0; i < id_cols_.size(); ++i) {
    id_cols_[i].push_back(other.id_cols_[i][row]);
  }
  for (std::size_t i = 0; i < num_cols_.size(); ++i) {
    num_cols_[i].push_back(other.num_cols_[i][row]);
  }
}

namespace {

template <typename T>
void gather_append(std::vector<T>* dst, const std::vector<T>& src,
                   std::span<const RowIndex> rows) {
  const std::size_t base = dst->size();
  dst->resize(base + rows.size());
  T* out = dst->data() + base;
  const T* in = src.data();
  for (std::size_t i = 0; i < rows.size(); ++i) out[i] = in[rows[i]];
}

}  // namespace

void SolutionTable::append_rows_from(const SolutionTable& other,
                                     std::span<const RowIndex> rows) {
  IDS_CHECK(same_schema(other));
  for (std::size_t i = 0; i < id_cols_.size(); ++i) {
    gather_append(&id_cols_[i], other.id_cols_[i], rows);
  }
  for (std::size_t i = 0; i < num_cols_.size(); ++i) {
    gather_append(&num_cols_[i], other.num_cols_[i], rows);
  }
}

void SolutionTable::append_row_range_from(const SolutionTable& other,
                                          std::size_t begin, std::size_t end) {
  IDS_CHECK(same_schema(other));
  IDS_CHECK(begin <= end && end <= other.num_rows());
  for (std::size_t i = 0; i < id_cols_.size(); ++i) {
    const auto& src = other.id_cols_[i];
    id_cols_[i].insert(id_cols_[i].end(),
                       src.begin() + static_cast<std::ptrdiff_t>(begin),
                       src.begin() + static_cast<std::ptrdiff_t>(end));
  }
  for (std::size_t i = 0; i < num_cols_.size(); ++i) {
    const auto& src = other.num_cols_[i];
    num_cols_[i].insert(num_cols_[i].end(),
                        src.begin() + static_cast<std::ptrdiff_t>(begin),
                        src.begin() + static_cast<std::ptrdiff_t>(end));
  }
}

void SolutionTable::append_prefix_from(const SolutionTable& other,
                                       std::span<const RowIndex> rows) {
  IDS_CHECK(other.id_vars_.size() <= id_vars_.size());
  IDS_CHECK(std::equal(other.id_vars_.begin(), other.id_vars_.end(),
                       id_vars_.begin()));
  IDS_CHECK(num_vars_ == other.num_vars_);
  for (std::size_t i = 0; i < other.id_cols_.size(); ++i) {
    gather_append(&id_cols_[i], other.id_cols_[i], rows);
  }
  for (std::size_t i = 0; i < num_cols_.size(); ++i) {
    gather_append(&num_cols_[i], other.num_cols_[i], rows);
  }
}

std::vector<std::vector<RowIndex>> SolutionTable::partition_rows(
    std::span<const int> dst_of_row, int num_dsts) {
  IDS_CHECK(dst_of_row.size() < 0xffffffffull)
      << "row index space is 32-bit";
  // Counting pass first so each destination list is one exact allocation.
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_dsts), 0);
  for (int d : dst_of_row) ++counts[static_cast<std::size_t>(d)];
  std::vector<std::vector<RowIndex>> lists(static_cast<std::size_t>(num_dsts));
  for (int d = 0; d < num_dsts; ++d) {
    lists[static_cast<std::size_t>(d)].reserve(
        counts[static_cast<std::size_t>(d)]);
  }
  for (std::size_t r = 0; r < dst_of_row.size(); ++r) {
    lists[static_cast<std::size_t>(dst_of_row[r])].push_back(
        static_cast<RowIndex>(r));
  }
  return lists;
}

int SolutionTable::add_num_var(std::string name) {
  IDS_CHECK(num_var_index(name) < 0) << "duplicate numeric variable " << name;
  num_vars_.push_back(std::move(name));
  num_cols_.emplace_back(num_rows(), 0.0);
  return static_cast<int>(num_vars_.size() - 1);
}

void SolutionTable::filter_rows(const std::vector<char>& keep) {
  IDS_CHECK(keep.size() == num_rows());
  auto compact = [&keep](auto& col) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < col.size(); ++r) {
      if (keep[r]) col[w++] = col[r];
    }
    col.resize(w);
  };
  for (auto& c : id_cols_) compact(c);
  for (auto& c : num_cols_) compact(c);
}

void SolutionTable::truncate(std::size_t n) {
  if (n >= num_rows()) return;
  for (auto& c : id_cols_) c.resize(n);
  for (auto& c : num_cols_) c.resize(n);
}

SolutionTable SolutionTable::take_rows(std::span<const std::size_t> rows) const {
  SolutionTable out = empty_like();
  auto gather = [&rows](auto* dst, const auto& src) {
    dst->resize(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) (*dst)[i] = src[rows[i]];
  };
  for (std::size_t i = 0; i < id_cols_.size(); ++i) {
    gather(&out.id_cols_[i], id_cols_[i]);
  }
  for (std::size_t i = 0; i < num_cols_.size(); ++i) {
    gather(&out.num_cols_[i], num_cols_[i]);
  }
  return out;
}

SolutionTable SolutionTable::empty_like() const {
  return SolutionTable(id_vars_, num_vars_);
}

void SolutionTable::clear() {
  for (auto& c : id_cols_) c.clear();
  for (auto& c : num_cols_) c.clear();
}

}  // namespace ids::graph
