#include "graph/solution.h"

#include <cassert>

namespace ids::graph {

SolutionTable::SolutionTable(std::vector<std::string> id_vars,
                             std::vector<std::string> num_vars)
    : id_vars_(std::move(id_vars)),
      num_vars_(std::move(num_vars)),
      id_cols_(id_vars_.size()),
      num_cols_(num_vars_.size()) {}

int SolutionTable::id_var_index(std::string_view name) const {
  for (std::size_t i = 0; i < id_vars_.size(); ++i) {
    if (id_vars_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

int SolutionTable::num_var_index(std::string_view name) const {
  for (std::size_t i = 0; i < num_vars_.size(); ++i) {
    if (num_vars_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void SolutionTable::reserve(std::size_t rows) {
  for (auto& c : id_cols_) c.reserve(rows);
  for (auto& c : num_cols_) c.reserve(rows);
}

void SolutionTable::append_row(std::span<const TermId> ids,
                               std::span<const double> nums) {
  assert(ids.size() == id_cols_.size());
  assert(nums.size() == num_cols_.size() || (nums.empty() && num_cols_.empty()));
  for (std::size_t i = 0; i < id_cols_.size(); ++i) id_cols_[i].push_back(ids[i]);
  for (std::size_t i = 0; i < num_cols_.size(); ++i) {
    num_cols_[i].push_back(i < nums.size() ? nums[i] : 0.0);
  }
}

void SolutionTable::append_table(const SolutionTable& other) {
  assert(same_schema(other));
  for (std::size_t i = 0; i < id_cols_.size(); ++i) {
    id_cols_[i].insert(id_cols_[i].end(), other.id_cols_[i].begin(),
                       other.id_cols_[i].end());
  }
  for (std::size_t i = 0; i < num_cols_.size(); ++i) {
    num_cols_[i].insert(num_cols_[i].end(), other.num_cols_[i].begin(),
                        other.num_cols_[i].end());
  }
}

void SolutionTable::append_row_from(const SolutionTable& other,
                                    std::size_t row) {
  assert(same_schema(other));
  for (std::size_t i = 0; i < id_cols_.size(); ++i) {
    id_cols_[i].push_back(other.id_cols_[i][row]);
  }
  for (std::size_t i = 0; i < num_cols_.size(); ++i) {
    num_cols_[i].push_back(other.num_cols_[i][row]);
  }
}

int SolutionTable::add_num_var(std::string name) {
  assert(num_var_index(name) < 0 && "duplicate numeric variable");
  num_vars_.push_back(std::move(name));
  num_cols_.emplace_back(num_rows(), 0.0);
  return static_cast<int>(num_vars_.size() - 1);
}

void SolutionTable::filter_rows(const std::vector<char>& keep) {
  assert(keep.size() == num_rows());
  auto compact = [&keep](auto& col) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < col.size(); ++r) {
      if (keep[r]) col[w++] = col[r];
    }
    col.resize(w);
  };
  for (auto& c : id_cols_) compact(c);
  for (auto& c : num_cols_) compact(c);
}

void SolutionTable::truncate(std::size_t n) {
  if (n >= num_rows()) return;
  for (auto& c : id_cols_) c.resize(n);
  for (auto& c : num_cols_) c.resize(n);
}

SolutionTable SolutionTable::take_rows(std::span<const std::size_t> rows) const {
  SolutionTable out = empty_like();
  out.reserve(rows.size());
  for (std::size_t r : rows) out.append_row_from(*this, r);
  return out;
}

SolutionTable SolutionTable::empty_like() const {
  return SolutionTable(id_vars_, num_vars_);
}

void SolutionTable::clear() {
  for (auto& c : id_cols_) c.clear();
  for (auto& c : num_cols_) c.clear();
}

}  // namespace ids::graph
