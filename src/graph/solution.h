#pragma once

// Columnar solution tables.
//
// Intermediate query results ("solutions" in SPARQL terminology) bind
// variables to term ids, plus optionally to computed numeric values (UDF
// scores such as Smith-Waterman similarity or predicted binding affinity).
// Tables are columnar: appends and scans over one variable are cache
// friendly, and redistribution packs rows densely.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"
#include "graph/dictionary.h"

namespace ids::graph {

/// Row position within one solution table part. 32-bit on purpose: the
/// gather/partition kernels stream index lists at memory bandwidth, and
/// halving the index width halves that traffic. Per-part row counts stay
/// far below 2^32 (parts are per-rank slices of an in-memory table).
using RowIndex = std::uint32_t;

class SolutionTable {
 public:
  SolutionTable() = default;

  /// Schema: named id-typed variables and named double-typed variables.
  explicit SolutionTable(std::vector<std::string> id_vars,
                         std::vector<std::string> num_vars = {});

  const std::vector<std::string>& id_vars() const { return id_vars_; }
  const std::vector<std::string>& num_vars() const { return num_vars_; }

  /// Index of an id variable, or -1.
  int id_var_index(std::string_view name) const;
  /// Index of a numeric variable, or -1.
  int num_var_index(std::string_view name) const;

  std::size_t num_rows() const {
    return id_cols_.empty() ? (num_cols_.empty() ? 0 : num_cols_[0].size())
                            : id_cols_[0].size();
  }

  void reserve(std::size_t rows) IDS_INVALIDATES(id_cols_);

  /// Appends one row; `ids` and `nums` must match the schema arity.
  void append_row(std::span<const TermId> ids, std::span<const double> nums = {})
      IDS_INVALIDATES(id_cols_);

  /// Appends all rows of `other` (same schema required).
  void append_table(const SolutionTable& other) IDS_INVALIDATES(id_cols_);

  /// Appends row `row` of `other` (same schema required).
  void append_row_from(const SolutionTable& other, std::size_t row)
      IDS_INVALIDATES(id_cols_);

  // ---- Batch kernels ------------------------------------------------------
  // Column-at-a-time row movement: one pass per column instead of one
  // schema-length pass per row, so appends run as contiguous gathers /
  // memcpys instead of pointer-chasing push_backs.

  /// Gather-appends `other`'s rows at the given positions, in order (same
  /// schema required). Equivalent to append_row_from in a loop.
  void append_rows_from(const SolutionTable& other,
                        std::span<const RowIndex> rows)
      IDS_INVALIDATES(id_cols_);

  /// Bulk-appends the contiguous row range [begin, end) of `other` (same
  /// schema required); each column is one range insert.
  void append_row_range_from(const SolutionTable& other, std::size_t begin,
                             std::size_t end) IDS_INVALIDATES(id_cols_);

  /// Gather-appends only the columns `other` shares with this table:
  /// other's id variables must be a *prefix* of this table's id variables
  /// and the numeric schemas must match. The trailing id columns are left
  /// untouched — the caller (a join/extend kernel producing new bindings)
  /// must append to them via id_col_mut() until all columns are equal
  /// length again.
  void append_prefix_from(const SolutionTable& other,
                          std::span<const RowIndex> rows)
      IDS_INVALIDATES(id_cols_);

  /// Splits row positions by destination: partition_rows(dst, p)[d] lists
  /// the rows r (ascending) with dst[r] == d. The index lists feed
  /// append_rows_from, turning a row-at-a-time shuffle into one gather per
  /// (source, destination) pair.
  static std::vector<std::vector<RowIndex>> partition_rows(
      std::span<const int> dst_of_row, int num_dsts);

  /// Mutable column access for batch kernels that write new bindings
  /// directly (see append_prefix_from). Callers must leave every column at
  /// the same length.
  std::vector<TermId>& id_col_mut(int var_idx) {
    return id_cols_[static_cast<std::size_t>(var_idx)];
  }
  std::vector<double>& num_col_mut(int var_idx) {
    return num_cols_[static_cast<std::size_t>(var_idx)];
  }

  TermId id_at(std::size_t row, int var_idx) const {
    return id_cols_[static_cast<std::size_t>(var_idx)][row];
  }
  double num_at(std::size_t row, int var_idx) const {
    return num_cols_[static_cast<std::size_t>(var_idx)][row];
  }

  /// Full column access for tight loops.
  const std::vector<TermId>& id_col(int var_idx) const {
    return id_cols_[static_cast<std::size_t>(var_idx)];
  }
  const std::vector<double>& num_col(int var_idx) const {
    return num_cols_[static_cast<std::size_t>(var_idx)];
  }

  /// Adds a new numeric column (filled with 0.0 for existing rows) and
  /// returns its index; used when a FILTER stage materializes a score.
  int add_num_var(std::string name) IDS_INVALIDATES(num_cols_);

  void set_num(std::size_t row, int var_idx, double v) {
    num_cols_[static_cast<std::size_t>(var_idx)][row] = v;
  }

  /// Keeps only the rows whose flag is true (stable). flags.size() must
  /// equal num_rows().
  void filter_rows(const std::vector<char>& keep) IDS_INVALIDATES(id_cols_);

  /// Keeps only the first n rows (no-op if n >= num_rows()).
  void truncate(std::size_t n) IDS_INVALIDATES(id_cols_);

  /// Extracts the given rows into a new table with the same schema.
  SolutionTable take_rows(std::span<const std::size_t> rows) const;

  /// An empty table with the same schema.
  SolutionTable empty_like() const;

  void clear() IDS_INVALIDATES(id_cols_);

  /// Modeled size of one row in bytes, for communication costing.
  std::size_t row_bytes() const {
    return id_vars_.size() * sizeof(TermId) + num_vars_.size() * sizeof(double);
  }

  bool same_schema(const SolutionTable& other) const {
    return id_vars_ == other.id_vars_ && num_vars_ == other.num_vars_;
  }

 private:
  std::vector<std::string> id_vars_;
  std::vector<std::string> num_vars_;
  std::vector<std::vector<TermId>> id_cols_;
  std::vector<std::vector<double>> num_cols_;
};

}  // namespace ids::graph
