#include "graph/dictionary.h"

#include "common/check.h"

namespace ids::graph {

TermId Dictionary::intern(std::string_view term) {
  MutexLock lock(mutex_);
  auto it = ids_.find(std::string(term));
  if (it != ids_.end()) return it->second;
  TermId id = static_cast<TermId>(names_.size());
  names_.emplace_back(term);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<TermId> Dictionary::lookup(std::string_view term) const {
  MutexLock lock(mutex_);
  auto it = ids_.find(std::string(term));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::name(TermId id) const {
  MutexLock lock(mutex_);
  IDS_CHECK(id < names_.size() && id != kInvalidTerm)
      << "unknown TermId " << id;
  return names_[id];
}

std::size_t Dictionary::size() const {
  MutexLock lock(mutex_);
  return names_.size() - 1;
}

}  // namespace ids::graph
