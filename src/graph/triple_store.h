#pragma once

// Hash-sharded distributed triple store.
//
// Triples are assigned to shards by a stable hash of the subject id, the
// same per-rank data sharding CGE uses. One shard corresponds to one rank
// of the simulated machine; the engine layer pairs shard i with rank i.

#include <atomic>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/thread_annotations.h"
#include "graph/dictionary.h"
#include "graph/shard.h"

namespace ids::graph {

class TripleStore {
 public:
  explicit TripleStore(int num_shards);

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Interns the three terms and adds the triple to the owning shard.
  /// Ingest-phase only: aborts if the store is frozen.
  void add(std::string_view s, std::string_view p, std::string_view o);

  /// Adds an already-encoded triple. Ingest-phase only.
  void add_ids(const Triple& t);

  /// Finalizes every shard (sort + dedup) and freezes the store: this is
  /// the ingest→serve epoch transition, after which shards are immutable
  /// and safe to scan from any number of concurrent queries. Idempotent.
  void finalize();

  /// True once finalize() has sealed the store (acquire pairs with the
  /// release in finalize(), so a thread that observes frozen() also
  /// observes the finalized shards).
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  /// Returns the store to the ingest phase for incremental updates (the
  /// deploy update endpoint). The caller owns quiescence: no queries may
  /// be in flight between reopen() and the next finalize().
  void reopen() { frozen_.store(false, std::memory_order_release); }

  const GraphShard& shard(int i) const { return shards_[static_cast<std::size_t>(i)]; }

  /// Stable owner shard for a subject id.
  int shard_of_subject(TermId s) const {
    return static_cast<int>(mix64(s) % static_cast<std::uint64_t>(shards_.size()));
  }

  std::size_t total_triples() const;

  /// Scans all shards; for tests and small tools, not the engine hot path.
  std::vector<Triple> match_all(const TriplePattern& pattern) const;

 private:
  Dictionary dict_;
  // Shards mutate during ingest (add/add_ids) and are sealed by
  // finalize(); after that every access is a read, so frozen stores can
  // be shared across concurrent queries (ROADMAP item 1).
  std::vector<GraphShard> shards_ IDS_FROZEN_AFTER(finalize);
  std::atomic<bool> frozen_{false};
};

}  // namespace ids::graph
