#pragma once

// One rank's shard of the triple store.
//
// Each shard keeps three sorted copies of its triples (SPO, POS, OSP) so
// any pattern with at least one bound position resolves to a binary-search
// range scan, the access-path structure CGE uses. Appends mark the shard
// dirty; finalize() (re)builds the indexes, so ingest and query phases can
// interleave — IDS supports adding data to a running instance (§2.3).

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/triple.h"

namespace ids::graph {

/// Index orderings available in a shard.
enum class IndexOrder { kSPO, kPOS, kOSP };

class GraphShard {
 public:
  /// Appends a triple; the shard must be finalized (again) before scans.
  void add(const Triple& t);

  /// (Re)builds the three sorted indexes and deduplicates. No-op when the
  /// shard is already clean.
  void finalize();

  bool finalized() const { return !dirty_; }
  std::size_t size() const { return spo_.size(); }

  /// Calls `fn` for every triple matching the constant positions of
  /// `pattern` in this shard. Variables with the same name in two positions
  /// are required to bind consistently (e.g. {?x, p, ?x}).
  void scan(const TriplePattern& pattern,
            const std::function<void(const Triple&)>& fn) const;

  /// Number of matching triples (same semantics as scan).
  std::size_t count(const TriplePattern& pattern) const;

  /// Chooses the best index for a pattern; exposed for planner tests.
  static IndexOrder choose_index(const TriplePattern& pattern);

  /// Direct access for iteration-heavy consumers (read-only, post-finalize).
  const std::vector<Triple>& spo() const { return spo_; }

 private:
  template <typename Fn>
  void scan_impl(const TriplePattern& pattern, Fn&& fn) const;

  std::vector<Triple> spo_;
  std::vector<Triple> pos_;
  std::vector<Triple> osp_;
  bool dirty_ = true;
};

}  // namespace ids::graph
