#pragma once

// Core triple and pattern types.

#include <array>
#include <cstdint>
#include <string>

#include "graph/dictionary.h"

namespace ids::graph {

/// One RDF fact as dictionary-encoded ids.
struct Triple {
  TermId s = kInvalidTerm;
  TermId p = kInvalidTerm;
  TermId o = kInvalidTerm;

  friend bool operator==(const Triple&, const Triple&) = default;
};

/// A pattern term: either a constant id or a named variable.
struct PatternTerm {
  bool is_var = false;
  TermId constant = kInvalidTerm;  // when !is_var
  std::string var;                 // when is_var

  static PatternTerm Const(TermId id) {
    PatternTerm t;
    t.constant = id;
    return t;
  }
  static PatternTerm Var(std::string name) {
    PatternTerm t;
    t.is_var = true;
    t.var = std::move(name);
    return t;
  }
};

/// One basic graph pattern (subject, predicate, object), SPARQL-style.
struct TriplePattern {
  PatternTerm s, p, o;

  /// Number of constant (bound) positions — a cheap selectivity proxy.
  int bound_positions() const {
    return (!s.is_var ? 1 : 0) + (!p.is_var ? 1 : 0) + (!o.is_var ? 1 : 0);
  }
};

}  // namespace ids::graph
