#include "io/dataset_io.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"

namespace ids::io {

namespace {

/// Splits one triple line into three terms; literals may contain spaces.
bool split_triple_line(std::string_view line, std::string out[3]) {
  std::size_t pos = 0;
  for (int t = 0; t < 3; ++t) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) return false;
    if (line[pos] == '"') {
      std::size_t end = line.find('"', pos + 1);
      if (end == std::string_view::npos) return false;
      out[t] = std::string(line.substr(pos, end - pos + 1));
      pos = end + 1;
    } else {
      std::size_t end = line.find(' ', pos);
      if (end == std::string_view::npos) end = line.size();
      out[t] = std::string(line.substr(pos, end - pos));
      pos = end;
    }
  }
  // Optional trailing " ."
  std::string_view rest = trim(line.substr(pos));
  return rest.empty() || rest == ".";
}

}  // namespace

Result<std::size_t> export_triples(const graph::TripleStore& store,
                                   std::ostream& out) {
  std::vector<graph::Triple> all = store.match_all(graph::TriplePattern{
      graph::PatternTerm::Var("s"), graph::PatternTerm::Var("p"),
      graph::PatternTerm::Var("o")});
  std::sort(all.begin(), all.end(),
            [](const graph::Triple& a, const graph::Triple& b) {
              return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
            });
  const auto& dict = store.dict();
  for (const auto& t : all) {
    out << dict.name(t.s) << ' ' << dict.name(t.p) << ' ' << dict.name(t.o)
        << " .\n";
  }
  if (!out) return Status::Internal("triple export stream failure");
  return all.size();
}

Result<std::size_t> import_triples(graph::TripleStore* store,
                                   std::istream& in) {
  std::string line;
  std::size_t count = 0;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::string terms[3];
    if (!split_triple_line(trimmed, terms)) {
      return Status::InvalidArgument("malformed triple at line " +
                                     std::to_string(line_no));
    }
    store->add(terms[0], terms[1], terms[2]);
    ++count;
  }
  return count;
}

Result<std::size_t> export_features(const store::FeatureStore& features,
                                    const graph::Dictionary& dict,
                                    std::ostream& out) {
  std::vector<std::string> lines;
  features.for_each([&](graph::TermId entity, std::string_view feature,
                        const store::FeatureValue& value) {
    std::string line = dict.name(entity);
    line += '\t';
    line += feature;
    line += '\t';
    if (const double* d = std::get_if<double>(&value)) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "f\t%.17g", *d);
      line += buf;
    } else if (const std::int64_t* i = std::get_if<std::int64_t>(&value)) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "i\t%" PRId64, *i);
      line += buf;
    } else {
      line += "s\t";
      line += std::get<std::string>(value);
    }
    lines.push_back(std::move(line));
  });
  std::sort(lines.begin(), lines.end());
  for (const auto& l : lines) out << l << '\n';
  if (!out) return Status::Internal("feature export stream failure");
  return lines.size();
}

Result<std::size_t> import_features(store::FeatureStore* features,
                                    graph::Dictionary* dict,
                                    std::istream& in) {
  std::string line;
  std::size_t count = 0;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    auto fields = split(line, '\t');
    if (fields.size() != 4 || fields[2].size() != 1) {
      return Status::InvalidArgument("malformed feature at line " +
                                     std::to_string(line_no));
    }
    graph::TermId entity = dict->intern(fields[0]);
    switch (fields[2][0]) {
      case 'f':
        features->set(entity, fields[1], std::strtod(fields[3].c_str(), nullptr));
        break;
      case 'i':
        features->set(entity, fields[1],
                      static_cast<std::int64_t>(
                          std::strtoll(fields[3].c_str(), nullptr, 10)));
        break;
      case 's':
        features->set(entity, fields[1], fields[3]);
        break;
      default:
        return Status::InvalidArgument("unknown feature type at line " +
                                       std::to_string(line_no));
    }
    ++count;
  }
  return count;
}

}  // namespace ids::io
