#pragma once

// Dataset import/export.
//
// IDS's deployment story (§2.3) is "launch on your laptop and then
// transition to a larger system using the same container" — which needs
// datasets to move between instances. Two line-oriented text formats:
//
//   Triples  — N-Triples-flavoured: `<term> <term> <term> .` per line,
//              where a term is either a compact IRI (no spaces) or a
//              quoted literal. Comment lines start with '#'.
//   Features — TSV: `entity <TAB> feature <TAB> {f|i|s} <TAB> value`.
//
// Exports are deterministic (sorted), so round-tripped files are
// byte-comparable.

#include <istream>
#include <ostream>

#include "common/result.h"
#include "graph/triple_store.h"
#include "store/feature_store.h"

namespace ids::io {

/// Writes every triple (sorted by id) as one line. Returns the count.
Result<std::size_t> export_triples(const graph::TripleStore& store,
                                   std::ostream& out);

/// Reads triples into the store (does NOT finalize — callers batch).
/// Fails on the first malformed line (message includes the line number).
Result<std::size_t> import_triples(graph::TripleStore* store,
                                   std::istream& in);

/// Writes every (entity, feature, value) as a TSV line, sorted.
Result<std::size_t> export_features(const store::FeatureStore& features,
                                    const graph::Dictionary& dict,
                                    std::ostream& out);

/// Reads feature lines; entities are interned into `dict`.
Result<std::size_t> import_features(store::FeatureStore* features,
                                    graph::Dictionary* dict,
                                    std::istream& in);

}  // namespace ids::io
