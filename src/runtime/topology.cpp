#include "runtime/topology.h"

namespace ids::runtime {

Topology Topology::cray_ex(int nodes) {
  Topology t;
  t.num_nodes = nodes;
  t.ranks_per_node = 32;  // the paper's runs use 32 ranks/node
  // Defaults in FabricParams already model a Slingshot-class network.
  return t;
}

Topology Topology::cache_testbed(int compute_nodes, int memory_nodes) {
  Topology t;
  t.num_nodes = compute_nodes;
  t.ranks_per_node = 64;  // dual-socket EPYC 7763: one rank per core pair
  t.num_memory_nodes = memory_nodes;
  t.fabric.inter_node.bytes_per_second = 25.0e9;  // Slingshot 25 GB/s
  return t;
}

Topology Topology::laptop(int ranks) {
  Topology t;
  t.num_nodes = 1;
  t.ranks_per_node = ranks;
  return t;
}

}  // namespace ids::runtime
