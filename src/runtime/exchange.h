#pragma once

// Collective communication with modeled cost.
//
// These are the MPI collectives the Cray Graph Engine pipeline relies on
// (redistribution between scans/joins/filters, global solution syncs),
// executed directly on in-memory buffers and *costed* on the per-rank
// virtual clocks using the alpha-beta link model:
//
//   alltoallv  — per rank: one alpha per peer message plus
//                max(bytes_sent, bytes_received) / bandwidth, split by
//                intra- vs inter-node traffic; synchronizing.
//   allgather/allreduce/broadcast — log2(P) tree: each step costs
//                alpha + step_bytes / bandwidth; synchronizing.
//
// Every collective ends with a clock barrier, exactly like the global
// solution syncs in the paper (§2.4.3: "ranks will sync solutions globally
// only once the evaluations are complete").

#include <cmath>
#include <cstdint>
#include <vector>

#include "runtime/topology.h"
#include "sim/virtual_clock.h"

namespace ids::runtime {

/// Per-rank traffic summary for one alltoallv, used to charge clocks.
struct TrafficSummary {
  std::uint64_t intra_sent = 0;
  std::uint64_t inter_sent = 0;
  std::uint64_t intra_recv = 0;
  std::uint64_t inter_recv = 0;
  std::uint64_t messages = 0;
};

/// Charges one rank's clock for the traffic it sourced/sank, then the
/// caller barriers. Exposed for testing.
inline void charge_traffic(sim::VirtualClock& clock, const Topology& topo,
                           const TrafficSummary& t) {
  const auto& intra = topo.fabric.intra_node;
  const auto& inter = topo.fabric.inter_node;
  sim::Nanos cost = 0;
  cost += t.messages * inter.latency;  // alpha per message (worst-case link)
  std::uint64_t intra_traffic = std::max(t.intra_sent, t.intra_recv);
  std::uint64_t inter_traffic = std::max(t.inter_sent, t.inter_recv);
  cost += sim::from_seconds(static_cast<double>(intra_traffic) /
                            intra.bytes_per_second);
  cost += sim::from_seconds(static_cast<double>(inter_traffic) /
                            inter.bytes_per_second);
  clock.advance(cost);
}

/// Personalized all-to-all: send[src][dst] is the vector of items rank
/// `src` sends to rank `dst`. Returns recv[dst] = concatenation of all
/// items addressed to dst (in source-rank order, deterministic).
/// `bytes_per_item` sizes the modeled traffic.
template <typename T>
std::vector<std::vector<T>> alltoallv(
    sim::ClockSet& clocks, const Topology& topo,
    std::vector<std::vector<std::vector<T>>>& send,
    std::uint64_t bytes_per_item = sizeof(T)) {
  const int p = topo.num_ranks();
  std::vector<TrafficSummary> traffic(static_cast<std::size_t>(p));

  std::vector<std::vector<T>> recv(static_cast<std::size_t>(p));
  // Pre-size receive buffers.
  std::vector<std::size_t> recv_count(static_cast<std::size_t>(p), 0);
  for (int src = 0; src < p; ++src) {
    for (int dst = 0; dst < p; ++dst) {
      recv_count[static_cast<std::size_t>(dst)] +=
          send[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)].size();
    }
  }
  for (int dst = 0; dst < p; ++dst) {
    recv[static_cast<std::size_t>(dst)].reserve(recv_count[static_cast<std::size_t>(dst)]);
  }

  for (int src = 0; src < p; ++src) {
    for (int dst = 0; dst < p; ++dst) {
      auto& buf = send[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
      if (buf.empty()) continue;
      std::uint64_t bytes = bytes_per_item * buf.size();
      if (src != dst) {
        auto& ts = traffic[static_cast<std::size_t>(src)];
        auto& td = traffic[static_cast<std::size_t>(dst)];
        ++ts.messages;
        if (topo.same_node(src, dst)) {
          ts.intra_sent += bytes;
          td.intra_recv += bytes;
        } else {
          ts.inter_sent += bytes;
          td.inter_recv += bytes;
        }
      }
      auto& out = recv[static_cast<std::size_t>(dst)];
      out.insert(out.end(), std::make_move_iterator(buf.begin()),
                 std::make_move_iterator(buf.end()));
      buf.clear();
    }
  }

  for (int r = 0; r < p; ++r) {
    charge_traffic(clocks.at(static_cast<std::size_t>(r)), topo,
                   traffic[static_cast<std::size_t>(r)]);
  }
  clocks.barrier();
  return recv;
}

/// Charges all clocks for a log2(P)-step tree collective moving
/// `bytes_per_step` per step, then barriers. Shared by the value-moving
/// collectives below.
inline void charge_tree_collective(sim::ClockSet& clocks, const Topology& topo,
                                   std::uint64_t bytes_per_step) {
  const int p = topo.num_ranks();
  int steps = 0;
  while ((1 << steps) < p) ++steps;
  const auto& link = (topo.num_nodes > 1) ? topo.fabric.inter_node
                                          : topo.fabric.intra_node;
  sim::Nanos per_step = link.transfer_cost(bytes_per_step);
  for (std::size_t r = 0; r < clocks.size(); ++r) {
    clocks.at(r).advance(static_cast<sim::Nanos>(steps) * per_step);
  }
  clocks.barrier();
}

/// Gathers one value from each rank to all ranks.
template <typename T>
std::vector<T> allgather(sim::ClockSet& clocks, const Topology& topo,
                         const std::vector<T>& per_rank_value,
                         std::uint64_t bytes_per_item = sizeof(T)) {
  charge_tree_collective(clocks, topo,
                         bytes_per_item * per_rank_value.size());
  return per_rank_value;  // values are already materialized per rank
}

/// Reduces per-rank values with `op` and returns the result visible to all.
template <typename T, typename Op>
T allreduce(sim::ClockSet& clocks, const Topology& topo,
            const std::vector<T>& per_rank_value, Op op,
            std::uint64_t bytes_per_item = sizeof(T)) {
  charge_tree_collective(clocks, topo, bytes_per_item);
  T acc = per_rank_value.at(0);
  for (std::size_t i = 1; i < per_rank_value.size(); ++i) {
    acc = op(acc, per_rank_value[i]);
  }
  return acc;
}

/// Broadcast: charges a tree collective for `bytes` from rank 0.
inline void broadcast_cost(sim::ClockSet& clocks, const Topology& topo,
                           std::uint64_t bytes) {
  charge_tree_collective(clocks, topo, bytes);
}

}  // namespace ids::runtime
