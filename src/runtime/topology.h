#pragma once

// Machine topology: how ranks map onto nodes and which link model connects
// any two ranks.
//
// The paper's scaling experiments use 64/128/256 compute nodes with 32
// ranks per node (2048/4096/8192 ranks) on Slingshot; the cache testbed
// uses 52 nodes (compute + dedicated memory nodes). A Topology instance
// captures exactly those parameters and nothing more — actual placement of
// data and work is decided by the layers above.

#include "common/check.h"
#include "sim/fabric.h"

namespace ids::runtime {

struct Topology {
  int num_nodes = 1;        // compute nodes hosting IDS ranks
  int ranks_per_node = 1;   // MPI ranks per compute node
  int num_memory_nodes = 0; // dedicated memory-server nodes (cache only)
  sim::FabricParams fabric;

  int num_ranks() const { return num_nodes * ranks_per_node; }

  int node_of_rank(int rank) const {
    IDS_CHECK(rank >= 0 && rank < num_ranks()) << "rank " << rank;
    return rank / ranks_per_node;
  }

  bool same_node(int rank_a, int rank_b) const {
    return node_of_rank(rank_a) == node_of_rank(rank_b);
  }

  /// Link model between two ranks (intra- vs inter-node).
  const sim::LinkModel& link(int from_rank, int to_rank) const {
    return same_node(from_rank, to_rank) ? fabric.intra_node
                                         : fabric.inter_node;
  }

  /// Total node count including memory servers (used by the cache layer).
  int total_nodes() const { return num_nodes + num_memory_nodes; }

  /// The paper's Cray EX scaling configuration at the given node count
  /// (32 ranks per node, Slingshot-class fabric).
  static Topology cray_ex(int nodes);

  /// The paper's 52-node cache testbed shape, scaled to the given number of
  /// compute and memory nodes (64-core EPYC nodes, 25 GB/s Slingshot).
  static Topology cache_testbed(int compute_nodes, int memory_nodes);

  /// A laptop-scale topology for examples and tests.
  static Topology laptop(int ranks = 4);
};

}  // namespace ids::runtime
