#pragma once

// Per-rank performance heterogeneity.
//
// Section 2.4.2 of the paper motivates throughput-based solution
// re-balancing with ranks whose UDF throughput differs because of "node
// hardware and differences in the sub-graph within each rank's data shard".
// A HeteroProfile injects exactly that: a relative speed multiplier per
// rank (1.0 = nominal). Modeled compute time for a rank divides by its
// speed factor.

#include <cstdint>
#include <utility>
#include <vector>

namespace ids::runtime {

class HeteroProfile {
 public:
  HeteroProfile() = default;
  explicit HeteroProfile(std::vector<double> speed) : speed_(std::move(speed)) {}

  /// All ranks identical at speed `s`.
  static HeteroProfile uniform(int num_ranks, double s = 1.0);

  /// Blocks of ranks with distinct speeds, e.g. the paper's worked example
  /// {500 ranks @1x, 300 @2x, 100 @3x}.
  static HeteroProfile groups(const std::vector<std::pair<int, double>>& blocks);

  /// Speeds drawn uniformly in [lo, hi], deterministic in `seed`.
  static HeteroProfile random(int num_ranks, double lo, double hi,
                              std::uint64_t seed);

  int num_ranks() const { return static_cast<int>(speed_.size()); }

  /// Relative speed of `rank`; 1.0 if the profile is empty (homogeneous).
  double at(int rank) const {
    if (speed_.empty()) return 1.0;
    return speed_[static_cast<std::size_t>(rank)];
  }

  double min_speed() const;
  double max_speed() const;

  const std::vector<double>& speeds() const { return speed_; }

 private:
  std::vector<double> speed_;
};

}  // namespace ids::runtime
