#pragma once

// Execution of per-rank work.
//
// Ranks in this reproduction are first-class objects rather than OS
// processes: the engine keeps a vector of per-rank state and executes
// "for each rank: f(rank)" steps. Real computation runs on a thread pool
// (so multi-core hosts still parallelize), while *modeled* time accrues on
// each rank's VirtualClock. This preserves the SPMD structure of the
// paper's MPI implementation — the bulk-synchronous pattern of local work
// followed by collectives — with a deterministic, laptop-runnable core.

#include <cstddef>
#include <functional>

namespace ids::runtime {

/// Runs fn(rank) for every rank in [0, num_ranks), in parallel over the
/// global thread pool. fn must only touch rank-local state (plus read-only
/// shared state), mirroring the isolation of MPI ranks.
void for_each_rank(int num_ranks, const std::function<void(int)>& fn);

/// Same, but wraps every rank invocation in a telemetry::ProfileScope
/// named `scope` so the sampling profiler attributes worker-thread time
/// to the operator that scheduled it. `scope` must be a string literal
/// (or otherwise outlive the process-global profiler).
void for_each_rank(int num_ranks, const char* scope,
                   const std::function<void(int)>& fn);

/// Serial variant for code that must interleave with shared mutable state.
void for_each_rank_serial(int num_ranks, const std::function<void(int)>& fn);

}  // namespace ids::runtime
