#include "runtime/rank_exec.h"

#include "common/thread_pool.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"

namespace ids::runtime {

namespace {

// Resolved lazily so the registry exists before first use; pointers into
// the (leaked) global registry stay valid for the process lifetime.
telemetry::Counter* steps_counter(const char* mode) {
  auto& registry = telemetry::MetricsRegistry::global();
  return registry.counter("ids_runtime_rank_steps_total", {{"mode", mode}});
}

telemetry::Counter* invocations_counter(const char* mode) {
  auto& registry = telemetry::MetricsRegistry::global();
  return registry.counter("ids_runtime_rank_invocations_total",
                          {{"mode", mode}});
}

}  // namespace

void for_each_rank(int num_ranks, const std::function<void(int)>& fn) {
  static telemetry::Counter* const steps = steps_counter("parallel");
  static telemetry::Counter* const invocations =
      invocations_counter("parallel");
  steps->inc();
  invocations->inc(static_cast<std::uint64_t>(num_ranks));
  ThreadPool::global().parallel_for(
      static_cast<std::size_t>(num_ranks),
      [&fn](std::size_t i) { fn(static_cast<int>(i)); });
}

void for_each_rank(int num_ranks, const char* scope,
                   const std::function<void(int)>& fn) {
  for_each_rank(num_ranks, [scope, &fn](int r) {
    telemetry::ProfileScope profile(scope);
    fn(r);
  });
}

void for_each_rank_serial(int num_ranks, const std::function<void(int)>& fn) {
  static telemetry::Counter* const steps = steps_counter("serial");
  static telemetry::Counter* const invocations = invocations_counter("serial");
  steps->inc();
  invocations->inc(static_cast<std::uint64_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) fn(r);
}

}  // namespace ids::runtime
