#include "runtime/rank_exec.h"

#include "common/thread_pool.h"

namespace ids::runtime {

void for_each_rank(int num_ranks, const std::function<void(int)>& fn) {
  ThreadPool::global().parallel_for(
      static_cast<std::size_t>(num_ranks),
      [&fn](std::size_t i) { fn(static_cast<int>(i)); });
}

void for_each_rank_serial(int num_ranks, const std::function<void(int)>& fn) {
  for (int r = 0; r < num_ranks; ++r) fn(r);
}

}  // namespace ids::runtime
