#include "runtime/hetero.h"

#include <algorithm>

#include "common/rng.h"

namespace ids::runtime {

HeteroProfile HeteroProfile::uniform(int num_ranks, double s) {
  return HeteroProfile(std::vector<double>(static_cast<std::size_t>(num_ranks), s));
}

HeteroProfile HeteroProfile::groups(
    const std::vector<std::pair<int, double>>& blocks) {
  std::vector<double> speed;
  for (const auto& [count, s] : blocks) {
    speed.insert(speed.end(), static_cast<std::size_t>(count), s);
  }
  return HeteroProfile(std::move(speed));
}

HeteroProfile HeteroProfile::random(int num_ranks, double lo, double hi,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> speed(static_cast<std::size_t>(num_ranks));
  for (auto& s : speed) s = rng.uniform(lo, hi);
  return HeteroProfile(std::move(speed));
}

double HeteroProfile::min_speed() const {
  if (speed_.empty()) return 1.0;
  return *std::min_element(speed_.begin(), speed_.end());
}

double HeteroProfile::max_speed() const {
  if (speed_.empty()) return 1.0;
  return *std::max_element(speed_.begin(), speed_.end());
}

}  // namespace ids::runtime
