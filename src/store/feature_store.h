#pragma once

// Feature store: typed per-entity attributes.
//
// One third of the paper's "3-in-1" datastore. Entities are dictionary
// term ids shared with the knowledge graph; features hold the payloads
// UDFs consume — protein sequences, SMILES strings, IC50 measurements,
// review flags. Sharded by entity id with the same hash as the triple
// store so an entity's triples and features live on the same rank.

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/hash.h"
#include "common/thread_annotations.h"
#include "graph/dictionary.h"

namespace ids::store {

using FeatureValue = std::variant<double, std::int64_t, std::string>;

class FeatureStore {
 public:
  explicit FeatureStore(int num_shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }

  int shard_of(graph::TermId entity) const {
    return static_cast<int>(mix64(entity) %
                            static_cast<std::uint64_t>(shards_.size()));
  }

  /// Sets (or overwrites) one feature of an entity. Ingest-phase only:
  /// aborts if the store is frozen.
  void set(graph::TermId entity, std::string_view feature, FeatureValue value);

  /// Seals the store: the ingest→serve epoch transition, after which the
  /// shards and the feature-name interner are immutable and safe to read
  /// from any number of concurrent queries. Idempotent.
  void freeze() { frozen_.store(true, std::memory_order_release); }

  /// True once freeze() has sealed the store (acquire pairs with the
  /// release in freeze(), so a thread that observes frozen() also
  /// observes every ingested pair).
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  /// Returns the store to the ingest phase for incremental updates. The
  /// caller owns quiescence: no queries may be in flight between
  /// reopen() and the next freeze().
  void reopen() { frozen_.store(false, std::memory_order_release); }

  /// Returns the value if present. Pointer is invalidated by writes.
  const FeatureValue* get(graph::TermId entity, std::string_view feature) const;

  /// Typed accessors; return nullopt on missing feature or wrong type.
  std::optional<double> get_double(graph::TermId entity,
                                   std::string_view feature) const;
  std::optional<std::int64_t> get_int(graph::TermId entity,
                                      std::string_view feature) const;
  /// Returned view is invalidated by writes to the same entity.
  std::optional<std::string_view> get_string(graph::TermId entity,
                                             std::string_view feature) const;

  /// Total number of (entity, feature) pairs stored.
  std::size_t size() const;

  /// Visits every (entity, feature name, value) pair. Shard-then-insertion
  /// order within a shard is unspecified; callers needing determinism sort.
  void for_each(const std::function<void(graph::TermId, std::string_view,
                                         const FeatureValue&)>& fn) const;

  /// Modeled bytes of one feature value, for cache/communication costing.
  static std::size_t value_bytes(const FeatureValue& v);

 private:
  using FeatureId = std::uint32_t;

  struct Entry {
    FeatureId feature;
    FeatureValue value;
  };
  struct Shard {
    // Entities carry a handful of features; a small vector beats a nested map.
    std::unordered_map<graph::TermId, std::vector<Entry>> entities;
    std::size_t pair_count = 0;
  };

  FeatureId intern_feature(std::string_view name);
  std::optional<FeatureId> lookup_feature(std::string_view name) const;

  // All three mutate only while ingesting feature pairs (set/intern) and
  // are sealed by freeze(); every serve-phase access is a read, so frozen
  // stores can be shared across concurrent queries (ROADMAP item 1).
  std::vector<Shard> shards_ IDS_FROZEN_AFTER(freeze);
  std::unordered_map<std::string, FeatureId> feature_ids_
      IDS_FROZEN_AFTER(freeze);
  std::vector<std::string> feature_names_ IDS_FROZEN_AFTER(freeze);
  std::atomic<bool> frozen_{false};
};

}  // namespace ids::store
