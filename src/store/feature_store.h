#pragma once

// Feature store: typed per-entity attributes.
//
// One third of the paper's "3-in-1" datastore. Entities are dictionary
// term ids shared with the knowledge graph; features hold the payloads
// UDFs consume — protein sequences, SMILES strings, IC50 measurements,
// review flags. Sharded by entity id with the same hash as the triple
// store so an entity's triples and features live on the same rank.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/hash.h"
#include "common/thread_annotations.h"
#include "graph/dictionary.h"

namespace ids::store {

using FeatureValue = std::variant<double, std::int64_t, std::string>;

class FeatureStore {
 public:
  explicit FeatureStore(int num_shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }

  int shard_of(graph::TermId entity) const {
    return static_cast<int>(mix64(entity) %
                            static_cast<std::uint64_t>(shards_.size()));
  }

  /// Sets (or overwrites) one feature of an entity.
  void set(graph::TermId entity, std::string_view feature, FeatureValue value);

  /// Returns the value if present. Pointer is invalidated by writes.
  const FeatureValue* get(graph::TermId entity, std::string_view feature) const;

  /// Typed accessors; return nullopt on missing feature or wrong type.
  std::optional<double> get_double(graph::TermId entity,
                                   std::string_view feature) const;
  std::optional<std::int64_t> get_int(graph::TermId entity,
                                      std::string_view feature) const;
  /// Returned view is invalidated by writes to the same entity.
  std::optional<std::string_view> get_string(graph::TermId entity,
                                             std::string_view feature) const;

  /// Total number of (entity, feature) pairs stored.
  std::size_t size() const;

  /// Visits every (entity, feature name, value) pair. Shard-then-insertion
  /// order within a shard is unspecified; callers needing determinism sort.
  void for_each(const std::function<void(graph::TermId, std::string_view,
                                         const FeatureValue&)>& fn) const;

  /// Modeled bytes of one feature value, for cache/communication costing.
  static std::size_t value_bytes(const FeatureValue& v);

 private:
  using FeatureId = std::uint32_t;

  struct Entry {
    FeatureId feature;
    FeatureValue value;
  };
  struct Shard {
    // Entities carry a handful of features; a small vector beats a nested map.
    std::unordered_map<graph::TermId, std::vector<Entry>> entities;
    std::size_t pair_count = 0;
  };

  FeatureId intern_feature(std::string_view name);
  std::optional<FeatureId> lookup_feature(std::string_view name) const;

  // All three mutate only while ingesting feature pairs; interning is
  // frozen before queries run (ROADMAP item 1 tracks concurrent phasing).
  std::vector<Shard> shards_
      IDS_SINGLE_QUERY_ONLY(ingest_mutable_frozen_before_serving);
  std::unordered_map<std::string, FeatureId> feature_ids_
      IDS_SINGLE_QUERY_ONLY(ingest_interning_frozen_before_serving);
  std::vector<std::string> feature_names_
      IDS_SINGLE_QUERY_ONLY(ingest_interning_frozen_before_serving);
};

}  // namespace ids::store
