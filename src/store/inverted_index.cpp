#include "store/inverted_index.h"

#include <algorithm>
#include <cctype>

#include "common/check.h"
#include "common/strings.h"

namespace ids::store {

std::vector<std::string> InvertedIndex::tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

void InvertedIndex::add_document(graph::TermId entity, std::string_view text) {
  IDS_CHECK(!frozen()) << "InvertedIndex::add_document after freeze(); "
                          "reopen() first";
  for (auto& tok : tokenize(text)) {
    postings_[tok].push_back(entity);
  }
  ++documents_;
}

void InvertedIndex::freeze() {
  if (frozen()) return;
  for (auto& [tok, list] : postings_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  frozen_.store(true, std::memory_order_release);
}

const std::vector<graph::TermId>* InvertedIndex::posting(
    std::string_view token) const {
  IDS_DCHECK(frozen()) << "InvertedIndex read before freeze()";
  auto it = postings_.find(to_lower(token));
  if (it == postings_.end()) return nullptr;
  return &it->second;
}

std::vector<graph::TermId> InvertedIndex::search_and(
    const std::vector<std::string>& tokens) const {
  if (tokens.empty()) return {};
  // Intersect smallest-first to keep intermediate results minimal.
  std::vector<const std::vector<graph::TermId>*> lists;
  for (const auto& t : tokens) {
    const auto* p = posting(t);
    if (!p) return {};
    lists.push_back(p);
  }
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<graph::TermId> acc = *lists[0];
  for (std::size_t i = 1; i < lists.size() && !acc.empty(); ++i) {
    std::vector<graph::TermId> next;
    std::set_intersection(acc.begin(), acc.end(), lists[i]->begin(),
                          lists[i]->end(), std::back_inserter(next));
    acc = std::move(next);
  }
  return acc;
}

std::vector<graph::TermId> InvertedIndex::search_or(
    const std::vector<std::string>& tokens) const {
  std::vector<graph::TermId> acc;
  for (const auto& t : tokens) {
    const auto* p = posting(t);
    if (!p) continue;
    std::vector<graph::TermId> next;
    std::set_union(acc.begin(), acc.end(), p->begin(), p->end(),
                   std::back_inserter(next));
    acc = std::move(next);
  }
  return acc;
}

std::size_t InvertedIndex::posting_size(std::string_view token) const {
  const auto* p = posting(token);
  return p ? p->size() : 0;
}

}  // namespace ids::store
