#pragma once

// Vector store: per-shard dense embeddings with exact top-k search.
//
// The second third of the "3-in-1" datastore. Embeddings are fixed-
// dimension float vectors keyed by entity term id, sharded like the triple
// store. Exact search scans the shard (the linear-algebraic operator of
// the paper's unified query engine); the IVF index in ivf_index.h provides
// the approximate path for large shards.

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.h"
#include "graph/dictionary.h"

namespace ids::store {

enum class Metric { kCosine, kDot, kL2 };

/// One search result; for kL2 the score is the *negated* distance so that
/// "higher is better" holds for every metric.
struct VectorHit {
  graph::TermId id = graph::kInvalidTerm;
  float score = 0.0f;
};

/// Score reported for an id with no stored embedding: worse than any real
/// similarity under every metric ("higher is better"), so a missing vector
/// can never outrank a stored one.
inline constexpr float kMissingScore = -1e30f;

class VectorStore {
 public:
  VectorStore(int num_shards, int dim);

  int dim() const { return dim_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::size_t size() const;
  std::size_t shard_size(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].ids.size();
  }

  int shard_of(graph::TermId id) const {
    return static_cast<int>(mix64(id) %
                            static_cast<std::uint64_t>(shards_.size()));
  }

  /// Adds (or overwrites) the embedding for an entity. vec.size() == dim.
  void add(graph::TermId id, std::span<const float> vec);

  /// Returns the stored vector or an empty span.
  std::span<const float> get(graph::TermId id) const;

  /// Exact top-k over one shard. Deterministic tie-break by ascending id.
  std::vector<VectorHit> topk_shard(int shard, std::span<const float> query,
                                    std::size_t k, Metric metric) const;

  /// Exact top-k over all shards (merges per-shard results).
  std::vector<VectorHit> topk(std::span<const float> query, std::size_t k,
                              Metric metric) const;

  /// Similarity between a query and one stored vector (same score
  /// convention as VectorHit).
  float score(std::span<const float> query, graph::TermId id,
              Metric metric) const;

  /// Raw shard access for index builders.
  std::span<const graph::TermId> shard_ids(int shard) const {
    const auto& s = shards_[static_cast<std::size_t>(shard)];
    return s.ids;
  }
  /// Base pointer of a shard's row-major embedding matrix
  /// (shard_size(shard) x dim) — the batched-scan entry point.
  const float* shard_data(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].data.data();
  }
  std::span<const float> shard_vector(int shard, std::size_t idx) const {
    const auto& s = shards_[static_cast<std::size_t>(shard)];
    return {s.data.data() + idx * static_cast<std::size_t>(dim_),
            static_cast<std::size_t>(dim_)};
  }

  /// Modeled work units (multiply-adds) of one exact shard scan.
  std::uint64_t scan_work_units(int shard) const {
    return static_cast<std::uint64_t>(shard_size(shard)) *
           static_cast<std::uint64_t>(dim_);
  }

  static float similarity(std::span<const float> a, std::span<const float> b,
                          Metric metric);

  /// Batched scoring of one query against `num_rows` contiguous row-major
  /// vectors: out[r] is bit-identical to similarity(query, row_r, metric)
  /// at every SIMD dispatch level (the exact-vs-IVF recall tests compare
  /// these scores directly).
  static void score_rows(std::span<const float> query, const float* rows,
                         std::size_t num_rows, std::size_t dim, Metric metric,
                         float* out);

  /// Batched scoring of scattered rows: out[i] scores base + idx[i]*dim —
  /// the IVF cluster-member path. Same bit-identity contract.
  static void score_rows_indexed(std::span<const float> query,
                                 const float* base, std::size_t dim,
                                 const std::size_t* idx, std::size_t num,
                                 Metric metric, float* out);

 private:
  struct Shard {
    std::vector<graph::TermId> ids;
    std::vector<float> data;  // row-major, ids.size() x dim
    std::unordered_map<graph::TermId, std::size_t> index;
  };

  int dim_;
  std::vector<Shard> shards_;
};

}  // namespace ids::store
