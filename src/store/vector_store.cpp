#include "store/vector_store.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/simd.h"

#include "common/check.h"
namespace ids::store {

namespace {

float norm(std::span<const float> a) {
  return std::sqrt(simd::dot(a.data(), a.data(), a.size()));
}

}  // namespace

float VectorStore::similarity(std::span<const float> a,
                              std::span<const float> b, Metric metric) {
  switch (metric) {
    case Metric::kDot:
      return simd::dot(a.data(), b.data(), a.size());
    case Metric::kCosine: {
      float na = norm(a);
      float nb = norm(b);
      if (na == 0.0f || nb == 0.0f) return 0.0f;
      return simd::dot(a.data(), b.data(), a.size()) / (na * nb);
    }
    case Metric::kL2:
      return -std::sqrt(simd::l2sq(a.data(), b.data(), a.size()));
  }
  return 0.0f;
}

// Both batched entry points reproduce similarity() expression-for-
// expression (same kernels, same norm/divide order), so batch scores are
// bit-identical to the per-row calls they replace.

void VectorStore::score_rows(std::span<const float> query, const float* rows,
                             std::size_t num_rows, std::size_t dim,
                             Metric metric, float* out) {
  switch (metric) {
    case Metric::kDot:
      simd::dot_batch(query.data(), rows, num_rows, dim, out);
      return;
    case Metric::kCosine: {
      const float na = norm(query);
      simd::dot_batch(query.data(), rows, num_rows, dim, out);
      std::vector<float> self(num_rows);
      simd::self_dot_batch(rows, num_rows, dim, self.data());
      for (std::size_t r = 0; r < num_rows; ++r) {
        const float nb = std::sqrt(self[r]);
        out[r] = (na == 0.0f || nb == 0.0f) ? 0.0f : out[r] / (na * nb);
      }
      return;
    }
    case Metric::kL2:
      simd::l2sq_batch(query.data(), rows, num_rows, dim, out);
      for (std::size_t r = 0; r < num_rows; ++r) out[r] = -std::sqrt(out[r]);
      return;
  }
}

void VectorStore::score_rows_indexed(std::span<const float> query,
                                     const float* base, std::size_t dim,
                                     const std::size_t* idx, std::size_t num,
                                     Metric metric, float* out) {
  switch (metric) {
    case Metric::kDot:
      simd::dot_batch_indexed(query.data(), base, dim, idx, num, out);
      return;
    case Metric::kCosine: {
      const float na = norm(query);
      simd::dot_batch_indexed(query.data(), base, dim, idx, num, out);
      for (std::size_t r = 0; r < num; ++r) {
        const float* row = base + idx[r] * dim;
        const float nb = std::sqrt(simd::dot(row, row, dim));
        out[r] = (na == 0.0f || nb == 0.0f) ? 0.0f : out[r] / (na * nb);
      }
      return;
    }
    case Metric::kL2:
      simd::l2sq_batch_indexed(query.data(), base, dim, idx, num, out);
      for (std::size_t r = 0; r < num; ++r) out[r] = -std::sqrt(out[r]);
      return;
  }
}

VectorStore::VectorStore(int num_shards, int dim)
    : dim_(dim), shards_(static_cast<std::size_t>(num_shards)) {
  IDS_CHECK(num_shards > 0 && dim > 0);
}

std::size_t VectorStore::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s.ids.size();
  return n;
}

void VectorStore::add(graph::TermId id, std::span<const float> vec) {
  IDS_CHECK(vec.size() == static_cast<std::size_t>(dim_))
      << "vector dimensionality mismatch";
  auto& s = shards_[static_cast<std::size_t>(shard_of(id))];
  auto it = s.index.find(id);
  if (it != s.index.end()) {
    std::copy(vec.begin(), vec.end(),
              s.data.begin() + static_cast<std::ptrdiff_t>(
                                   it->second * static_cast<std::size_t>(dim_)));
    return;
  }
  s.index.emplace(id, s.ids.size());
  s.ids.push_back(id);
  s.data.insert(s.data.end(), vec.begin(), vec.end());
}

std::span<const float> VectorStore::get(graph::TermId id) const {
  const auto& s = shards_[static_cast<std::size_t>(shard_of(id))];
  auto it = s.index.find(id);
  if (it == s.index.end()) return {};
  return {s.data.data() + it->second * static_cast<std::size_t>(dim_),
          static_cast<std::size_t>(dim_)};
}

std::vector<VectorHit> VectorStore::topk_shard(int shard,
                                               std::span<const float> query,
                                               std::size_t k,
                                               Metric metric) const {
  const auto& s = shards_[static_cast<std::size_t>(shard)];
  const std::size_t n = s.ids.size();
  // One batched scan over the contiguous shard matrix replaces n per-row
  // span calls; scores are bit-identical to the per-row path.
  std::vector<float> scores(n);
  score_rows(query, s.data.data(), n, static_cast<std::size_t>(dim_), metric,
             scores.data());
  std::vector<VectorHit> hits;
  hits.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    hits.push_back(VectorHit{s.ids[i], scores[i]});
  }
  auto better = [](const VectorHit& a, const VectorHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  if (hits.size() > k) {
    std::partial_sort(hits.begin(),
                      hits.begin() + static_cast<std::ptrdiff_t>(k), hits.end(),
                      better);
    hits.resize(k);
  } else {
    std::sort(hits.begin(), hits.end(), better);
  }
  return hits;
}

std::vector<VectorHit> VectorStore::topk(std::span<const float> query,
                                         std::size_t k, Metric metric) const {
  std::vector<VectorHit> all;
  for (int s = 0; s < num_shards(); ++s) {
    auto part = topk_shard(s, query, k, metric);
    all.insert(all.end(), part.begin(), part.end());
  }
  auto better = [](const VectorHit& a, const VectorHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  std::sort(all.begin(), all.end(), better);
  if (all.size() > k) all.resize(k);
  return all;
}

float VectorStore::score(std::span<const float> query, graph::TermId id,
                         Metric metric) const {
  auto v = get(id);
  if (v.empty()) return kMissingScore;
  return similarity(query, v, metric);
}

}  // namespace ids::store
