#include "store/vector_store.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/vector_ops.h"

#include "common/check.h"
namespace ids::store {

namespace {

float norm(std::span<const float> a) {
  return std::sqrt(dot_kernel(a, a));
}

}  // namespace

float VectorStore::similarity(std::span<const float> a,
                              std::span<const float> b, Metric metric) {
  switch (metric) {
    case Metric::kDot:
      return dot_kernel(a, b);
    case Metric::kCosine: {
      float na = norm(a);
      float nb = norm(b);
      if (na == 0.0f || nb == 0.0f) return 0.0f;
      return dot_kernel(a, b) / (na * nb);
    }
    case Metric::kL2:
      return -std::sqrt(l2sq_kernel(a, b));
  }
  return 0.0f;
}

VectorStore::VectorStore(int num_shards, int dim)
    : dim_(dim), shards_(static_cast<std::size_t>(num_shards)) {
  IDS_CHECK(num_shards > 0 && dim > 0);
}

std::size_t VectorStore::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s.ids.size();
  return n;
}

void VectorStore::add(graph::TermId id, std::span<const float> vec) {
  IDS_CHECK(vec.size() == static_cast<std::size_t>(dim_))
      << "vector dimensionality mismatch";
  auto& s = shards_[static_cast<std::size_t>(shard_of(id))];
  auto it = s.index.find(id);
  if (it != s.index.end()) {
    std::copy(vec.begin(), vec.end(),
              s.data.begin() + static_cast<std::ptrdiff_t>(
                                   it->second * static_cast<std::size_t>(dim_)));
    return;
  }
  s.index.emplace(id, s.ids.size());
  s.ids.push_back(id);
  s.data.insert(s.data.end(), vec.begin(), vec.end());
}

std::span<const float> VectorStore::get(graph::TermId id) const {
  const auto& s = shards_[static_cast<std::size_t>(shard_of(id))];
  auto it = s.index.find(id);
  if (it == s.index.end()) return {};
  return {s.data.data() + it->second * static_cast<std::size_t>(dim_),
          static_cast<std::size_t>(dim_)};
}

std::vector<VectorHit> VectorStore::topk_shard(int shard,
                                               std::span<const float> query,
                                               std::size_t k,
                                               Metric metric) const {
  const auto& s = shards_[static_cast<std::size_t>(shard)];
  std::vector<VectorHit> hits;
  hits.reserve(s.ids.size());
  for (std::size_t i = 0; i < s.ids.size(); ++i) {
    std::span<const float> v{
        s.data.data() + i * static_cast<std::size_t>(dim_),
        static_cast<std::size_t>(dim_)};
    hits.push_back(VectorHit{s.ids[i], similarity(query, v, metric)});
  }
  auto better = [](const VectorHit& a, const VectorHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  if (hits.size() > k) {
    std::partial_sort(hits.begin(),
                      hits.begin() + static_cast<std::ptrdiff_t>(k), hits.end(),
                      better);
    hits.resize(k);
  } else {
    std::sort(hits.begin(), hits.end(), better);
  }
  return hits;
}

std::vector<VectorHit> VectorStore::topk(std::span<const float> query,
                                         std::size_t k, Metric metric) const {
  std::vector<VectorHit> all;
  for (int s = 0; s < num_shards(); ++s) {
    auto part = topk_shard(s, query, k, metric);
    all.insert(all.end(), part.begin(), part.end());
  }
  auto better = [](const VectorHit& a, const VectorHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  std::sort(all.begin(), all.end(), better);
  if (all.size() > k) all.resize(k);
  return all;
}

float VectorStore::score(std::span<const float> query, graph::TermId id,
                         Metric metric) const {
  auto v = get(id);
  if (v.empty()) return kMissingScore;
  return similarity(query, v, metric);
}

}  // namespace ids::store
