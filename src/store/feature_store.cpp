#include "store/feature_store.h"

#include "common/check.h"
namespace ids::store {

FeatureStore::FeatureStore(int num_shards)
    : shards_(static_cast<std::size_t>(num_shards)) {
  IDS_CHECK(num_shards > 0);
}

FeatureStore::FeatureId FeatureStore::intern_feature(std::string_view name) {
  IDS_DCHECK(!frozen()) << "FeatureStore interning after freeze()";
  auto it = feature_ids_.find(std::string(name));
  if (it != feature_ids_.end()) return it->second;
  auto id = static_cast<FeatureId>(feature_names_.size());
  feature_names_.emplace_back(name);
  feature_ids_.emplace(feature_names_.back(), id);
  return id;
}

std::optional<FeatureStore::FeatureId> FeatureStore::lookup_feature(
    std::string_view name) const {
  auto it = feature_ids_.find(std::string(name));
  if (it == feature_ids_.end()) return std::nullopt;
  return it->second;
}

void FeatureStore::set(graph::TermId entity, std::string_view feature,
                       FeatureValue value) {
  IDS_CHECK(!frozen()) << "FeatureStore::set after freeze(); reopen() first";
  FeatureId fid = intern_feature(feature);
  auto& shard = shards_[static_cast<std::size_t>(shard_of(entity))];
  auto& entries = shard.entities[entity];
  for (auto& e : entries) {
    if (e.feature == fid) {
      e.value = std::move(value);
      return;
    }
  }
  entries.push_back(Entry{fid, std::move(value)});
  ++shard.pair_count;
}

const FeatureValue* FeatureStore::get(graph::TermId entity,
                                      std::string_view feature) const {
  auto fid = lookup_feature(feature);
  if (!fid) return nullptr;
  const auto& shard = shards_[static_cast<std::size_t>(shard_of(entity))];
  auto it = shard.entities.find(entity);
  if (it == shard.entities.end()) return nullptr;
  for (const auto& e : it->second) {
    if (e.feature == *fid) return &e.value;
  }
  return nullptr;
}

std::optional<double> FeatureStore::get_double(graph::TermId entity,
                                               std::string_view feature) const {
  const FeatureValue* v = get(entity, feature);
  if (!v) return std::nullopt;
  if (const double* d = std::get_if<double>(v)) return *d;
  if (const std::int64_t* i = std::get_if<std::int64_t>(v)) {
    return static_cast<double>(*i);
  }
  return std::nullopt;
}

std::optional<std::int64_t> FeatureStore::get_int(graph::TermId entity,
                                                  std::string_view feature) const {
  const FeatureValue* v = get(entity, feature);
  if (!v) return std::nullopt;
  if (const std::int64_t* i = std::get_if<std::int64_t>(v)) return *i;
  return std::nullopt;
}

std::optional<std::string_view> FeatureStore::get_string(
    graph::TermId entity, std::string_view feature) const {
  const FeatureValue* v = get(entity, feature);
  if (!v) return std::nullopt;
  if (const std::string* s = std::get_if<std::string>(v)) return *s;
  return std::nullopt;
}

std::size_t FeatureStore::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s.pair_count;
  return n;
}

void FeatureStore::for_each(
    const std::function<void(graph::TermId, std::string_view,
                             const FeatureValue&)>& fn) const {
  for (const auto& shard : shards_) {
    for (const auto& [entity, entries] : shard.entities) {
      for (const auto& e : entries) {
        fn(entity, feature_names_[e.feature], e.value);
      }
    }
  }
}

std::size_t FeatureStore::value_bytes(const FeatureValue& v) {
  if (const std::string* s = std::get_if<std::string>(&v)) return s->size();
  return 8;
}

}  // namespace ids::store
