#pragma once

// Keyword search: a classic inverted index over entity-attached text.
//
// The keyword leg of the paper's unified query engine. Documents are
// free-text blobs attached to entity term ids (names, descriptions,
// annotations); queries are conjunctions/disjunctions of tokens resolved
// by posting-list intersection/union.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "graph/dictionary.h"

namespace ids::store {

class InvertedIndex {
 public:
  /// Tokenizes `text` (lowercased alnum runs) and indexes every token for
  /// `entity`. May be called repeatedly per entity. Ingest-phase only:
  /// aborts if the index is frozen.
  void add_document(graph::TermId entity, std::string_view text);

  /// Sorts and dedups every posting list eagerly, then seals the index:
  /// the ingest→serve epoch transition. After freeze() all reads are
  /// const and safe from any number of concurrent queries. Idempotent.
  void freeze();

  /// True once freeze() has sealed the index (acquire pairs with the
  /// release in freeze(), so a thread that observes frozen() also
  /// observes the prepared posting lists).
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  /// Returns the index to the ingest phase for incremental updates. The
  /// caller owns quiescence: no queries may be in flight between
  /// reopen() and the next freeze().
  void reopen() { frozen_.store(false, std::memory_order_release); }

  /// Entities whose documents contain ALL of the tokens. Sorted ascending.
  std::vector<graph::TermId> search_and(
      const std::vector<std::string>& tokens) const;

  /// Entities whose documents contain ANY of the tokens. Sorted ascending.
  std::vector<graph::TermId> search_or(
      const std::vector<std::string>& tokens) const;

  /// Posting-list length of a token (0 if absent) — selectivity estimate.
  std::size_t posting_size(std::string_view token) const;

  std::size_t num_tokens() const { return postings_.size(); }
  std::size_t num_documents() const { return documents_; }

  /// Exposed for tests: the tokenizer used by add_document.
  static std::vector<std::string> tokenize(std::string_view text);

 private:
  /// Requires a frozen index (posting lists are prepared by freeze(), not
  /// lazily on read — serve-phase reads never mutate).
  const std::vector<graph::TermId>* posting(std::string_view token) const;

  // Posting lists mutate during ingest (add_document) and are sorted,
  // deduped, and sealed by freeze(); every serve-phase access is a read.
  std::unordered_map<std::string, std::vector<graph::TermId>> postings_
      IDS_FROZEN_AFTER(freeze);
  std::size_t documents_ IDS_FROZEN_AFTER(freeze) = 0;
  std::atomic<bool> frozen_{false};
};

}  // namespace ids::store
