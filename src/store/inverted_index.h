#pragma once

// Keyword search: a classic inverted index over entity-attached text.
//
// The keyword leg of the paper's unified query engine. Documents are
// free-text blobs attached to entity term ids (names, descriptions,
// annotations); queries are conjunctions/disjunctions of tokens resolved
// by posting-list intersection/union.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "graph/dictionary.h"

namespace ids::store {

class InvertedIndex {
 public:
  /// Tokenizes `text` (lowercased alnum runs) and indexes every token for
  /// `entity`. May be called repeatedly per entity.
  void add_document(graph::TermId entity, std::string_view text);

  /// Entities whose documents contain ALL of the tokens. Sorted ascending.
  std::vector<graph::TermId> search_and(
      const std::vector<std::string>& tokens) const;

  /// Entities whose documents contain ANY of the tokens. Sorted ascending.
  std::vector<graph::TermId> search_or(
      const std::vector<std::string>& tokens) const;

  /// Posting-list length of a token (0 if absent) — selectivity estimate.
  std::size_t posting_size(std::string_view token) const;

  std::size_t num_tokens() const { return postings_.size(); }
  std::size_t num_documents() const { return documents_; }

  /// Exposed for tests: the tokenizer used by add_document.
  static std::vector<std::string> tokenize(std::string_view text);

 private:
  const std::vector<graph::TermId>* posting(std::string_view token) const;
  /// Sorts and dedups all posting lists; done lazily before reads.
  void ensure_prepared() const;

  // ensure_prepared() sorts lazily on the first read after ingest — a
  // mutation under const access paths that is only sound single-query.
  mutable std::unordered_map<std::string, std::vector<graph::TermId>> postings_
      IDS_SINGLE_QUERY_ONLY(lazy_prepare_mutates_on_read);
  mutable bool prepared_ IDS_SINGLE_QUERY_ONLY(lazy_prepare_mutates_on_read) =
      true;
  std::size_t documents_
      IDS_SINGLE_QUERY_ONLY(ingest_mutable_frozen_before_serving) = 0;
};

}  // namespace ids::store
