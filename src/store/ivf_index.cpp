#include "store/ivf_index.h"

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "common/vector_ops.h"

namespace ids::store {

IvfIndex::IvfIndex(const VectorStore& store, int shard, Params params)
    : store_(store), shard_(shard), dim_(store.dim()) {
  const std::size_t n = store.shard_size(shard);
  const int kc = std::max(1, std::min<int>(params.num_clusters,
                                           static_cast<int>(n > 0 ? n : 1)));

  // Initialize centroids from evenly spaced, deterministic samples.
  Rng rng(params.seed);
  centroids_.assign(static_cast<std::size_t>(kc),
                    std::vector<float>(static_cast<std::size_t>(dim_), 0.0f));
  if (n == 0) {
    members_.assign(static_cast<std::size_t>(kc), {});
    return;
  }
  for (int c = 0; c < kc; ++c) {
    std::size_t pick = (n * static_cast<std::size_t>(c)) / static_cast<std::size_t>(kc);
    auto v = store.shard_vector(shard, pick);
    std::copy(v.begin(), v.end(), centroids_[static_cast<std::size_t>(c)].begin());
  }

  std::vector<int> assign(n, 0);
  for (int iter = 0; iter < params.kmeans_iters; ++iter) {
    // Assignment step.
    for (std::size_t i = 0; i < n; ++i) {
      auto v = store.shard_vector(shard, i);
      float best = std::numeric_limits<float>::max();
      int best_c = 0;
      for (int c = 0; c < kc; ++c) {
        float d = l2sq_kernel(v, centroids_[static_cast<std::size_t>(c)]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      assign[i] = best_c;
    }
    // Update step.
    std::vector<std::vector<float>> sums(
        static_cast<std::size_t>(kc),
        std::vector<float>(static_cast<std::size_t>(dim_), 0.0f));
    std::vector<std::size_t> counts(static_cast<std::size_t>(kc), 0);
    for (std::size_t i = 0; i < n; ++i) {
      auto v = store.shard_vector(shard, i);
      auto c = static_cast<std::size_t>(assign[i]);
      for (int d = 0; d < dim_; ++d) sums[c][static_cast<std::size_t>(d)] += v[static_cast<std::size_t>(d)];
      ++counts[c];
    }
    for (int c = 0; c < kc; ++c) {
      auto cc = static_cast<std::size_t>(c);
      if (counts[cc] == 0) {
        // Re-seed an empty cluster with a deterministic random point.
        std::size_t pick = rng.next_below(n);
        auto v = store.shard_vector(shard, pick);
        std::copy(v.begin(), v.end(), centroids_[cc].begin());
        continue;
      }
      for (int d = 0; d < dim_; ++d) {
        centroids_[cc][static_cast<std::size_t>(d)] =
            sums[cc][static_cast<std::size_t>(d)] /
            static_cast<float>(counts[cc]);
      }
    }
  }

  members_.assign(static_cast<std::size_t>(kc), {});
  for (std::size_t i = 0; i < n; ++i) {
    members_[static_cast<std::size_t>(assign[i])].push_back(i);
  }
}

std::vector<VectorHit> IvfIndex::topk(std::span<const float> query,
                                      std::size_t k, Metric metric,
                                      int nprobe) const {
  const int kc = num_clusters();
  nprobe = std::max(1, std::min(nprobe, kc));

  // Rank clusters by centroid distance to the query.
  std::vector<std::pair<float, int>> order;
  order.reserve(static_cast<std::size_t>(kc));
  for (int c = 0; c < kc; ++c) {
    order.emplace_back(l2sq_kernel(query, centroids_[static_cast<std::size_t>(c)]), c);
  }
  std::sort(order.begin(), order.end());

  std::vector<VectorHit> hits;
  auto ids = store_.shard_ids(shard_);
  for (int p = 0; p < nprobe; ++p) {
    for (std::size_t idx : members_[static_cast<std::size_t>(order[static_cast<std::size_t>(p)].second)]) {
      auto v = store_.shard_vector(shard_, idx);
      hits.push_back(
          VectorHit{ids[idx], VectorStore::similarity(query, v, metric)});
    }
  }
  auto better = [](const VectorHit& a, const VectorHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  std::sort(hits.begin(), hits.end(), better);
  if (hits.size() > k) hits.resize(k);
  return hits;
}

double IvfIndex::scan_fraction(int nprobe) const {
  const int kc = num_clusters();
  nprobe = std::max(1, std::min(nprobe, kc));
  std::size_t total = 0;
  for (const auto& m : members_) total += m.size();
  if (total == 0) return 0.0;
  // Average over cluster sizes: assume probes hit average-sized clusters.
  return static_cast<double>(nprobe) / static_cast<double>(kc);
}

std::uint64_t IvfIndex::work_units(int nprobe) const {
  std::size_t total = 0;
  for (const auto& m : members_) total += m.size();
  return static_cast<std::uint64_t>(
      scan_fraction(nprobe) * static_cast<double>(total) *
      static_cast<double>(dim_));
}

}  // namespace ids::store
