#include "store/ivf_index.h"

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "common/simd.h"

namespace ids::store {

IvfIndex::IvfIndex(const VectorStore& store, int shard, Params params)
    : store_(store), shard_(shard), dim_(store.dim()) {
  const std::size_t n = store.shard_size(shard);
  const int kc = std::max(1, std::min<int>(params.num_clusters,
                                           static_cast<int>(n > 0 ? n : 1)));
  num_clusters_ = kc;
  const auto dim = static_cast<std::size_t>(dim_);

  // Initialize centroids from evenly spaced, deterministic samples. The
  // centroid matrix is contiguous row-major so both the k-means assignment
  // step and the query-time cluster ranking run the batched l2sq kernel.
  Rng rng(params.seed);
  centroids_.assign(static_cast<std::size_t>(kc) * dim, 0.0f);
  if (n == 0) {
    members_.assign(static_cast<std::size_t>(kc), {});
    return;
  }
  for (int c = 0; c < kc; ++c) {
    std::size_t pick = (n * static_cast<std::size_t>(c)) / static_cast<std::size_t>(kc);
    auto v = store.shard_vector(shard, pick);
    std::copy(v.begin(), v.end(),
              centroids_.begin() +
                  static_cast<std::ptrdiff_t>(static_cast<std::size_t>(c) * dim));
  }

  const float* rows = store.shard_data(shard);
  std::vector<int> assign(n, 0);
  std::vector<float> dists(static_cast<std::size_t>(kc));
  for (int iter = 0; iter < params.kmeans_iters; ++iter) {
    // Assignment step: one batched scan of the centroid matrix per point;
    // the ascending-c strict-< argmin reproduces the per-row loop exactly.
    for (std::size_t i = 0; i < n; ++i) {
      simd::l2sq_batch(rows + i * dim, centroids_.data(),
                       static_cast<std::size_t>(kc), dim, dists.data());
      float best = std::numeric_limits<float>::max();
      int best_c = 0;
      for (int c = 0; c < kc; ++c) {
        if (dists[static_cast<std::size_t>(c)] < best) {
          best = dists[static_cast<std::size_t>(c)];
          best_c = c;
        }
      }
      assign[i] = best_c;
    }
    // Update step.
    std::vector<float> sums(static_cast<std::size_t>(kc) * dim, 0.0f);
    std::vector<std::size_t> counts(static_cast<std::size_t>(kc), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const float* v = rows + i * dim;
      float* sum = sums.data() + static_cast<std::size_t>(assign[i]) * dim;
      for (std::size_t d = 0; d < dim; ++d) sum[d] += v[d];
      ++counts[static_cast<std::size_t>(assign[i])];
    }
    for (int c = 0; c < kc; ++c) {
      auto cc = static_cast<std::size_t>(c);
      float* centroid = centroids_.data() + cc * dim;
      if (counts[cc] == 0) {
        // Re-seed an empty cluster with a deterministic random point.
        std::size_t pick = rng.next_below(n);
        auto v = store.shard_vector(shard, pick);
        std::copy(v.begin(), v.end(), centroid);
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        centroid[d] = sums[cc * dim + d] / static_cast<float>(counts[cc]);
      }
    }
  }

  members_.assign(static_cast<std::size_t>(kc), {});
  for (std::size_t i = 0; i < n; ++i) {
    members_[static_cast<std::size_t>(assign[i])].push_back(i);
  }
}

std::vector<VectorHit> IvfIndex::topk(std::span<const float> query,
                                      std::size_t k, Metric metric,
                                      int nprobe) const {
  const int kc = num_clusters();
  nprobe = std::max(1, std::min(nprobe, kc));
  const auto dim = static_cast<std::size_t>(dim_);

  // Rank clusters by centroid distance to the query (batched scan; the
  // (distance, cluster) pair sort keeps the deterministic tie-break).
  std::vector<float> dists(static_cast<std::size_t>(kc));
  simd::l2sq_batch(query.data(), centroids_.data(),
                   static_cast<std::size_t>(kc), dim, dists.data());
  std::vector<std::pair<float, int>> order;
  order.reserve(static_cast<std::size_t>(kc));
  for (int c = 0; c < kc; ++c) {
    order.emplace_back(dists[static_cast<std::size_t>(c)], c);
  }
  std::sort(order.begin(), order.end());

  std::vector<VectorHit> hits;
  auto ids = store_.shard_ids(shard_);
  const float* rows = store_.shard_data(shard_);
  std::vector<float> scores;
  for (int p = 0; p < nprobe; ++p) {
    const auto& mem =
        members_[static_cast<std::size_t>(order[static_cast<std::size_t>(p)].second)];
    if (mem.empty()) continue;
    // Gathered batch over the probed cluster's members; scores are
    // bit-identical to the exact scan's (recall tests rely on this).
    scores.resize(mem.size());
    VectorStore::score_rows_indexed(query, rows, dim, mem.data(), mem.size(),
                                    metric, scores.data());
    for (std::size_t i = 0; i < mem.size(); ++i) {
      hits.push_back(VectorHit{ids[mem[i]], scores[i]});
    }
  }
  auto better = [](const VectorHit& a, const VectorHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  std::sort(hits.begin(), hits.end(), better);
  if (hits.size() > k) hits.resize(k);
  return hits;
}

double IvfIndex::scan_fraction(int nprobe) const {
  const int kc = num_clusters();
  nprobe = std::max(1, std::min(nprobe, kc));
  std::size_t total = 0;
  for (const auto& m : members_) total += m.size();
  if (total == 0) return 0.0;
  // Average over cluster sizes: assume probes hit average-sized clusters.
  return static_cast<double>(nprobe) / static_cast<double>(kc);
}

std::uint64_t IvfIndex::work_units(int nprobe) const {
  std::size_t total = 0;
  for (const auto& m : members_) total += m.size();
  return static_cast<std::uint64_t>(
      scan_fraction(nprobe) * static_cast<double>(total) *
      static_cast<double>(dim_));
}

}  // namespace ids::store
