#pragma once

// IVF (inverted-file) approximate nearest-neighbour index.
//
// For large shards an exact scan is wasteful; this index clusters a
// shard's vectors with a few rounds of k-means and searches only the
// `nprobe` clusters whose centroids are closest to the query. Recall vs
// the exact scan is a tested property (see tests/store_test.cpp).

#include <cstdint>
#include <span>
#include <vector>

#include "store/vector_store.h"

namespace ids::store {

class IvfIndex {
 public:
  struct Params {
    int num_clusters = 16;
    int kmeans_iters = 8;
    std::uint64_t seed = 0x1f5a11ad;
  };

  /// Builds an index over one shard of `store`. The store must outlive the
  /// index and not be mutated afterwards.
  IvfIndex(const VectorStore& store, int shard, Params params);

  /// Approximate top-k: scans the nprobe nearest clusters.
  std::vector<VectorHit> topk(std::span<const float> query, std::size_t k,
                              Metric metric, int nprobe) const;

  int num_clusters() const { return num_clusters_; }

  /// Fraction of shard vectors scanned for a given nprobe (cost proxy).
  double scan_fraction(int nprobe) const;

  /// Modeled work units for a query at the given nprobe.
  std::uint64_t work_units(int nprobe) const;

 private:
  const VectorStore& store_;
  int shard_;
  int dim_;
  int num_clusters_ = 0;
  std::vector<float> centroids_;  // row-major, num_clusters_ x dim
  std::vector<std::vector<std::size_t>> members_;  // per-cluster vector idxs
};

}  // namespace ids::store
